"""Execution engines: fast path, trajectories, noise, compaction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel, PauliNoise, ReadoutError
from repro.quantum.simulator import _is_fast_path, simulate_counts


def _run(qc, shots=1024, seed=0, noise=None, memory=False):
    return simulate_counts(qc, shots, np.random.default_rng(seed), noise, memory)


class TestFastPath:
    def test_final_measurement_uses_fast_path(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure([0, 1], [0, 1])
        assert _is_fast_path(qc, None)

    def test_midcircuit_measure_disables(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        qc.x(0)
        assert not _is_fast_path(qc, None)

    def test_reset_disables(self):
        qc = QuantumCircuit(1, 1)
        qc.reset(0)
        assert not _is_fast_path(qc, None)

    def test_condition_disables(self):
        qc = QuantumCircuit(1, 1)
        qc.append("x", [0], condition=(0, 1))
        assert not _is_fast_path(qc, None)

    def test_noise_disables(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        noise = NoiseModel.uniform_depolarizing(0.01, 0.01)
        assert not _is_fast_path(qc, noise)


class TestSemantics:
    def test_deterministic_circuit(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.measure([0, 1], [0, 1])
        counts, _ = _run(qc)
        assert counts == {"01": 1024}

    def test_unmeasured_clbits_read_zero(self):
        qc = QuantumCircuit(2, 3)
        qc.x(0)
        qc.measure(0, 2)
        counts, _ = _run(qc, shots=10)
        assert counts == {"100": 10}

    def test_fast_and_trajectory_paths_agree(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0)
        qc.cx(0, 1)
        qc.ry(0.7, 2)
        qc.measure([0, 1, 2], [0, 1, 2])
        fast, _ = _run(qc, shots=6000, seed=1)
        # Force the trajectory path with a trailing no-op condition.
        qc2 = qc.copy()
        qc2.append("id", [2], condition=(2, 0))
        slow, _ = _run(qc2, shots=6000, seed=1)
        keys = set(fast) | set(slow)
        tvd = 0.5 * sum(
            abs(fast.get(k, 0) - slow.get(k, 0)) / 6000 for k in keys
        )
        assert tvd < 0.05

    def test_midcircuit_measure_then_flip(self):
        qc = QuantumCircuit(1, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.x(0)
        qc.measure(0, 1)
        counts, _ = _run(qc, shots=400, seed=2)
        # Second bit must always be the complement of the first.
        for key in counts:
            assert key[0] != key[1]

    def test_reset_gives_zero(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=300, seed=3)
        assert counts == {"0": 300}

    def test_conditional_execution(self):
        qc = QuantumCircuit(2, 2)
        qc.x(0)
        qc.measure(0, 0)
        qc.append("x", [1], condition=(0, 1))
        qc.measure(1, 1)
        counts, _ = _run(qc, shots=100, seed=4)
        assert counts == {"11": 100}

    def test_conditional_not_taken(self):
        qc = QuantumCircuit(2, 2)
        qc.measure(0, 0)
        qc.append("x", [1], condition=(0, 1))
        qc.measure(1, 1)
        counts, _ = _run(qc, shots=100, seed=5)
        assert counts == {"00": 100}

    def test_memory_matches_counts(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        counts, memory = _run(qc, shots=50, seed=6, memory=True)
        assert memory is not None and len(memory) == 50
        assert counts["0"] == memory.count("0")

    def test_seed_determinism(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.h(1)
        qc.measure([0, 1], [0, 1])
        a, _ = _run(qc, seed=42)
        b, _ = _run(qc, seed=42)
        assert a == b

    def test_zero_shots_rejected(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(SimulationError):
            _run(qc, shots=0)


class TestNoise:
    def test_bitflip_rate_measured(self):
        noise = NoiseModel()
        noise.add_all_qubit_error(PauliNoise.bit_flip(0.2), "x")
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=4000, seed=7, noise=noise)
        # 20% of shots flip back to |0>.
        assert 0.15 < counts.get("0", 0) / 4000 < 0.25

    def test_phase_flip_invisible_in_z_basis(self):
        noise = NoiseModel()
        noise.add_all_qubit_error(PauliNoise.phase_flip(0.5), "x")
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=500, seed=8, noise=noise)
        assert counts == {"1": 500}

    def test_readout_error(self):
        noise = NoiseModel()
        noise.add_readout_error(ReadoutError(p1_given_0=0.3, p0_given_1=0.0))
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=4000, seed=9, noise=noise)
        assert 0.25 < counts.get("1", 0) / 4000 < 0.35

    def test_local_readout_overrides_global(self):
        noise = NoiseModel()
        noise.add_readout_error(ReadoutError.symmetric(0.5))
        noise.add_readout_error(ReadoutError(0.0, 0.0), qubit=0)
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=200, seed=10, noise=noise)
        assert counts == {"0": 200}

    def test_local_gate_error(self):
        noise = NoiseModel()
        noise.add_local_error(PauliNoise.bit_flip(1.0), "x", [0])
        qc = QuantumCircuit(1, 1)
        qc.x(0)
        qc.measure(0, 0)
        counts, _ = _run(qc, shots=100, seed=11, noise=noise)
        assert counts == {"0": 100}  # always flipped back

    def test_two_qubit_gate_noise_hits_both(self):
        noise = NoiseModel()
        noise.add_all_qubit_error(PauliNoise.bit_flip(1.0), "cx")
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        counts, _ = _run(qc, shots=100, seed=12, noise=noise)
        assert counts == {"11": 100}


class TestCompaction:
    def test_wide_sparse_circuit_is_compacted(self):
        qc = QuantumCircuit(127, 2)
        qc.h(100)
        qc.cx(100, 101)
        qc.measure(100, 0)
        qc.measure(101, 1)
        counts, _ = _run(qc, shots=2000, seed=13)
        assert set(counts) == {"00", "11"}

    def test_too_many_touched_qubits_rejected(self):
        qc = QuantumCircuit(25, 0)
        for q in range(25):
            qc.h(q)
        with pytest.raises(SimulationError, match="capped"):
            _run(qc, shots=1)
