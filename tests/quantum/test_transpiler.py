"""Transpiler: ZYZ synthesis, decomposition correctness, routing, passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import unitary_group

from repro.errors import TranspilerError
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.gates import GATE_SPECS, gate_matrix, u_matrix
from repro.quantum.statevector import Statevector, apply_matrix
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import (
    DEFAULT_BASIS,
    Layout,
    cancel_adjacent_inverses,
    decompose_to_basis,
    dense_layout,
    merge_rotations,
    optimize,
    route,
    transpile,
    zyz_angles,
)
from repro.quantum.library import ghz_state, grover, random_circuit


class TestZYZ:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_random_unitaries_roundtrip(self, seed):
        u = unitary_group.rvs(2, random_state=np.random.default_rng(seed))
        theta, phi, lam = zyz_angles(u)
        v = u_matrix(theta, phi, lam)
        ratio = u @ v.conj().T
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2), atol=1e-8)

    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "s", "t", "sx"])
    def test_named_gates_roundtrip(self, name):
        u = gate_matrix(name)
        theta, phi, lam = zyz_angles(u)
        v = u_matrix(theta, phi, lam)
        ratio = u @ v.conj().T
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2), atol=1e-9)

    def test_identity_gives_zero_angles(self):
        theta, phi, lam = zyz_angles(np.eye(2))
        assert abs(theta) < 1e-9 and abs(phi + lam) < 1e-9

    def test_wrong_shape(self):
        with pytest.raises(TranspilerError):
            zyz_angles(np.eye(4))


def _sequence_equals_gate(seq, name, params, n):
    """Check an instruction sequence implements a gate up to global phase."""
    rng = np.random.default_rng(0)
    state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
    state /= np.linalg.norm(state)
    ref = apply_matrix(state, gate_matrix(name, params), list(range(n)), n)
    got = state
    for inst in seq:
        got = apply_matrix(got, gate_matrix(inst.name, inst.params), list(inst.qubits), n)
    return abs(np.vdot(ref, got)) > 1 - 1e-8


ALL_GATES = sorted({s.name for s in GATE_SPECS.values()})


class TestDecomposition:
    @pytest.mark.parametrize("name", ALL_GATES)
    @pytest.mark.parametrize("basis", [("u", "cx"), ("rz", "sx", "x", "cx")])
    def test_every_gate_into_both_bases(self, name, basis):
        spec = GATE_SPECS[name]
        params = tuple(0.41 * (i + 1) for i in range(spec.num_params))
        inst = Instruction(name, tuple(range(spec.num_qubits)), params=params)
        seq = decompose_to_basis([inst], basis)
        for out in seq:
            assert out.name in basis, f"{out.name} not in {basis}"
        assert _sequence_equals_gate(seq, name, params, spec.num_qubits)

    def test_basis_must_contain_cx(self):
        with pytest.raises(TranspilerError):
            decompose_to_basis([], ("u",))

    def test_measure_and_barrier_pass_through(self):
        insts = [
            Instruction("measure", (0,), (0,)),
            Instruction("barrier", (0, 1)),
        ]
        assert decompose_to_basis(insts, ("u", "cx")) == insts


class TestPasses:
    def test_cancel_self_inverse_pair(self):
        insts = [Instruction("h", (0,)), Instruction("h", (0,))]
        assert cancel_adjacent_inverses(insts) == []

    def test_cancel_hermitian_pair(self):
        insts = [Instruction("s", (0,)), Instruction("sdg", (0,))]
        assert cancel_adjacent_inverses(insts) == []

    def test_cancel_across_disjoint_wires(self):
        insts = [
            Instruction("h", (0,)),
            Instruction("x", (1,)),
            Instruction("h", (0,)),
        ]
        remaining = cancel_adjacent_inverses(insts)
        assert [i.name for i in remaining] == ["x"]

    def test_no_cancel_through_shared_wire(self):
        insts = [
            Instruction("h", (0,)),
            Instruction("cx", (0, 1)),
            Instruction("h", (0,)),
        ]
        assert len(cancel_adjacent_inverses(insts)) == 3

    def test_cascading_cancellation(self):
        insts = [
            Instruction("h", (0,)),
            Instruction("x", (0,)),
            Instruction("x", (0,)),
            Instruction("h", (0,)),
        ]
        assert cancel_adjacent_inverses(insts) == []

    def test_merge_rotations(self):
        insts = [
            Instruction("rz", (0,), params=(0.3,)),
            Instruction("rz", (0,), params=(0.4,)),
        ]
        merged = merge_rotations(insts)
        assert len(merged) == 1
        assert merged[0].params[0] == pytest.approx(0.7)

    def test_merge_to_identity_drops(self):
        insts = [
            Instruction("rz", (0,), params=(0.3,)),
            Instruction("rz", (0,), params=(-0.3,)),
        ]
        assert merge_rotations(insts) == []

    def test_zero_rotation_dropped(self):
        insts = [Instruction("rx", (0,), params=(0.0,))]
        assert merge_rotations(insts) == []

    def test_merge_partner_searched_once_per_instruction(self, monkeypatch):
        """Regression: the pass used to run the backwards partner search
        twice per mergeable instruction (once to test, once to use) —
        quadratic work doubled for nothing.  Pin the call count."""
        from repro.quantum.transpiler import passes

        calls = []
        real = passes._find_merge_partner
        monkeypatch.setattr(
            passes, "_find_merge_partner",
            lambda out, inst: calls.append(inst) or real(out, inst),
        )
        insts = [
            Instruction("rz", (0,), params=(0.3,)),
            Instruction("rz", (0,), params=(0.4,)),
            Instruction("cx", (0, 1)),
            Instruction("rz", (0,), params=(0.5,)),
        ]
        merged = merge_rotations(insts)
        # Eligible searches: the 2nd rz (out non-empty) and the 4th rz.
        # The 1st rz sees an empty ``out``; the cx is not mergeable.
        assert len(calls) == 2
        assert [i.name for i in merged] == ["rz", "cx", "rz"]

    def test_merge_rotations_output_unchanged_regression(self):
        """The single-search fix must not change what the pass emits: pin
        the exact output on streams covering every branch — merge, merge to
        identity, zero-angle drop, commuting past disjoint wires, blocked by
        a shared wire, and conditioned instructions left untouched."""
        stream = [
            Instruction("rz", (0,), params=(0.3,)),
            Instruction("x", (1,)),                      # disjoint: skipped over
            Instruction("rz", (0,), params=(0.4,)),      # merges -> rz(0.7)
            Instruction("cx", (0, 1)),                   # shared wire: blocks
            Instruction("rz", (0,), params=(0.5,)),
            Instruction("rz", (0,), params=(-0.5,)),     # merge to identity
            Instruction("rx", (1,), params=(0.0,)),      # zero angle: dropped
            Instruction("rz", (0,), params=(0.2,), condition=(0, 1)),
            Instruction("rz", (0,), params=(0.6,)),      # blocked by condition
        ]
        merged = merge_rotations(stream)
        assert [
            (i.name, i.qubits, i.params, i.condition) for i in merged
        ] == [
            # The merge lands at the *first* rotation's position, ahead of
            # the disjoint x it commuted past.
            ("rz", (0,), (pytest.approx(0.7),), None),
            ("x", (1,), (), None),
            ("cx", (0, 1), (), None),
            ("rz", (0,), (0.2,), (0, 1)),
            ("rz", (0,), (0.6,), None),
        ]

    def test_optimize_preserves_semantics(self):
        qc = random_circuit(3, depth=10, seed=4)
        before = Statevector.from_circuit(qc)
        optimized = optimize(qc.instructions, level=2)
        qc2 = qc.copy_empty()
        qc2._instructions = optimized
        after = Statevector.from_circuit(qc2)
        assert before.equiv(after)


class TestLayoutAndRouting:
    def test_trivial_layout(self):
        layout = Layout.trivial(3)
        assert layout.physical(2) == 2

    def test_layout_not_injective(self):
        with pytest.raises(TranspilerError):
            Layout({0: 1, 1: 1})

    def test_swap_updates_mapping(self):
        layout = Layout.trivial(2)
        layout.swap_physical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0

    def test_route_inserts_swaps_on_linear_chain(self):
        cmap = CouplingMap.linear(3)
        insts = [Instruction("cx", (0, 2))]
        routed, final = route(insts, Layout.trivial(3), cmap)
        names = [i.name for i in routed]
        assert "swap" in names
        for inst in routed:
            if len(inst.qubits) == 2:
                assert cmap.are_coupled(*inst.qubits)

    def test_route_rejects_three_qubit_gates(self):
        cmap = CouplingMap.linear(3)
        with pytest.raises(TranspilerError):
            route([Instruction("ccx", (0, 1, 2))], Layout.trivial(3), cmap)

    def test_dense_layout_places_all(self):
        qc = ghz_state(4)
        layout = dense_layout(qc, CouplingMap.grid(3, 3))
        placed = {layout.physical(q) for q in range(4)}
        assert len(placed) == 4


class TestTranspile:
    def test_no_coupling_map_keeps_width(self):
        qc = ghz_state(3, measure=True)
        out = transpile(qc, basis_gates=DEFAULT_BASIS)
        assert out.num_qubits == 3
        for inst in out:
            if inst.name not in ("measure", "barrier", "reset"):
                assert inst.name in DEFAULT_BASIS

    def test_semantics_preserved_through_routing(self, simulator):
        qc = grover(3, ["101"])
        cmap = CouplingMap.linear(5)
        out = transpile(qc, coupling_map=cmap)
        counts = simulator.run(out, shots=2000, seed=5).result().get_counts()
        assert max(counts, key=counts.get) == "101"

    def test_layout_metadata_recorded(self):
        qc = ghz_state(3, measure=True)
        out = transpile(qc, coupling_map=CouplingMap.grid(2, 2))
        assert set(out.metadata["layout"].keys()) == {0, 1, 2}
        assert "final_layout" in out.metadata

    def test_explicit_initial_layout(self):
        qc = QuantumCircuit(2, 2)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        out = transpile(qc, coupling_map=CouplingMap.linear(4), initial_layout=[3, 2])
        assert out.metadata["layout"] == {0: 3, 1: 2}

    def test_initial_layout_length_mismatch(self):
        qc = QuantumCircuit(2)
        with pytest.raises(TranspilerError):
            transpile(qc, coupling_map=CouplingMap.linear(4), initial_layout=[0])

    def test_initial_layout_out_of_device(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        with pytest.raises(TranspilerError, match="outside the device"):
            transpile(qc, coupling_map=CouplingMap.linear(4), initial_layout=[0, 9])

    def test_circuit_larger_than_device(self):
        qc = QuantumCircuit(5)
        qc.h(0)
        with pytest.raises(TranspilerError):
            transpile(qc, coupling_map=CouplingMap.linear(3))

    def test_optimization_level_zero_skips_peephole(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.h(0)
        out0 = transpile(qc, basis_gates=("h", "cx"), optimization_level=0)
        out1 = transpile(qc, basis_gates=("h", "cx"), optimization_level=1)
        assert out0.size() == 2
        assert out1.size() == 0
