"""The persistent on-disk cache tier and the layered ResultCache."""

import json

import pytest

from repro.errors import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    CacheKey,
    DiskResultCache,
    ExecutionService,
    ResultCache,
    default_service,
    set_default_service,
)
from repro.quantum.library import bell_pair


def _key(tag: int = 0, memory: bool = False) -> CacheKey:
    return CacheKey(
        circuit=f"{tag:016x}",
        backend="local_simulator",
        shots=64,
        seed=7,
        noise="ideal",
        memory=memory,
    )


class TestDiskResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(_key(), {"00": 40, "11": 24}, None)
        assert disk.get(_key()) == ({"00": 40, "11": 24}, None)
        assert len(disk) == 1
        assert disk.size_bytes() > 0

    def test_memory_roundtrip(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(_key(memory=True), {"0": 2, "1": 1}, ["0", "1", "0"])
        assert disk.get(_key(memory=True)) == ({"0": 2, "1": 1}, ["0", "1", "0"])

    def test_miss_returns_none(self, tmp_path):
        assert DiskResultCache(tmp_path).get(_key(99)) is None

    def test_corrupted_file_is_a_miss_and_removed(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(_key(), {"0": 64}, None)
        path = disk.path_for(_key())
        path.write_text("{ not json", encoding="utf-8")
        assert disk.get(_key()) is None
        assert not path.exists()

    def test_truncated_file_is_a_miss(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(_key(), {"0": 64}, None)
        path = disk.path_for(_key())
        path.write_text(path.read_text(encoding="utf-8")[:10], encoding="utf-8")
        assert disk.get(_key()) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A digest collision (or tampered file) must never serve wrong data."""
        disk = DiskResultCache(tmp_path)
        disk.put(_key(), {"0": 64}, None)
        path = disk.path_for(_key())
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["key"]["shots"] = 4096
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert disk.get(_key()) is None

    def test_clear(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(_key(1), {"0": 1}, None)
        disk.put(_key(2), {"0": 1}, None)
        disk.clear()
        assert len(disk) == 0
        assert disk.get(_key(1)) is None

    def test_size_bytes_tolerates_concurrent_unlink(self, tmp_path, monkeypatch):
        """Regression: a concurrent ``clear()``/eviction may unlink a file
        between the directory listing and the ``stat`` — the scan must skip
        it, not raise ``FileNotFoundError``."""
        from pathlib import Path

        disk = DiskResultCache(tmp_path)
        disk.put(_key(1), {"0": 1}, None)
        disk.put(_key(2), {"0": 1}, None)
        vanished = disk.path_for(_key(1))
        survivor_size = disk.path_for(_key(2)).stat().st_size
        real_stat = Path.stat

        def racing_stat(self, **kwargs):
            if self == vanished:
                raise FileNotFoundError(str(self))  # unlinked mid-scan
            return real_stat(self, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        assert disk.size_bytes() == survivor_size
        assert [p for p, _, _ in disk.entry_stats()] == [disk.path_for(_key(2))]


class TestLayeredResultCache:
    def test_disk_fallthrough_promotes_and_counts(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        warm = ResultCache(disk=disk)
        warm.put(_key(), {"0": 64}, None)
        cold = ResultCache(disk=disk)  # fresh LRU over the same store
        assert cold.get(_key()) == ({"0": 64}, None)
        assert cold.stats.hits == 1
        assert cold.stats.disk_hits == 1
        assert len(cold) == 1  # promoted into the LRU
        # Second lookup is a pure memory hit.
        assert cold.get(_key()) is not None
        assert cold.stats.disk_hits == 1

    def test_peek_does_not_touch_stats(self):
        cache = ResultCache()
        cache.put(_key(), {"0": 64}, None)
        assert cache.peek(_key()) == ({"0": 64}, None)
        assert cache.peek(_key(5)) is None
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_put_empty_memory_does_not_alias_caller_list(self):
        """Regression: ``memory == []`` used to store the caller's object."""
        cache = ResultCache()
        shared: list = []
        cache.put(_key(memory=True), {"0": 64}, shared)
        shared.append("intruder")
        counts_mem = cache.get(_key(memory=True))
        assert counts_mem is not None
        assert counts_mem[1] == []

    def test_clear_clears_both_tiers(self, tmp_path):
        cache = ResultCache(disk=DiskResultCache(tmp_path))
        cache.put(_key(), {"0": 64}, None)
        cache.clear()
        assert len(cache) == 0
        assert len(cache.disk) == 0


class TestServiceDiskTier:
    def test_second_service_instance_is_warm(self, tmp_path):
        """Write -> new service (new process stand-in) -> zero simulations."""
        qc = bell_pair(measure=True)
        first = ExecutionService(max_workers=1, cache_dir=tmp_path)
        counts = first.run(qc, shots=100, seed=6).result().get_counts()
        assert first.stats()["simulations"] == 1
        first.shutdown()

        second = ExecutionService(max_workers=1, cache_dir=tmp_path)
        replay = second.run(qc, shots=100, seed=6).result().get_counts()
        stats = second.stats()
        assert replay == counts
        assert stats["simulations"] == 0
        assert stats["cache_hits"] == 1
        assert stats["cache_disk_hits"] == 1
        assert stats["cache_dir"] == str(tmp_path)
        second.shutdown()

    def test_memory_results_survive_restart(self, tmp_path):
        qc = bell_pair(measure=True)
        first = ExecutionService(max_workers=1, cache_dir=tmp_path)
        mem = first.run(qc, shots=20, seed=3, memory=True).result().get_memory()
        first.shutdown()
        second = ExecutionService(max_workers=1, cache_dir=tmp_path)
        assert (
            second.run(qc, shots=20, seed=3, memory=True).result().get_memory()
            == mem
        )
        assert second.stats()["simulations"] == 0
        second.shutdown()

    def test_corrupted_entry_falls_back_to_simulation(self, tmp_path):
        qc = bell_pair(measure=True)
        first = ExecutionService(max_workers=1, cache_dir=tmp_path)
        counts = first.run(qc, shots=100, seed=6).result().get_counts()
        first.shutdown()
        disk = DiskResultCache(tmp_path)
        for path in disk.cache_dir.glob("*.json"):
            path.write_text("garbage", encoding="utf-8")
        second = ExecutionService(max_workers=1, cache_dir=tmp_path)
        assert second.run(qc, shots=100, seed=6).result().get_counts() == counts
        assert second.stats()["simulations"] == 1  # re-simulated and re-persisted
        third = ExecutionService(max_workers=1, cache_dir=tmp_path)
        assert third.run(qc, shots=100, seed=6).result().get_counts() == counts
        assert third.stats()["simulations"] == 0
        second.shutdown()
        third.shutdown()

    def test_cache_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(BackendError, match="not both"):
            ExecutionService(cache=ResultCache(), cache_dir=tmp_path)

    def test_unseeded_runs_never_touch_disk(self, tmp_path):
        service = ExecutionService(max_workers=1, cache_dir=tmp_path)
        service.run(bell_pair(measure=True), shots=10)
        assert len(DiskResultCache(tmp_path)) == 0
        service.shutdown()

    def test_default_service_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        set_default_service(None)
        try:
            stats = default_service().stats()
            assert stats["cache_dir"] == str(tmp_path)
            assert stats["executor"] == "thread"
        finally:
            monkeypatch.delenv("REPRO_CACHE_DIR")
            set_default_service(None)


def _wide_counts_circuit(tag: int) -> QuantumCircuit:
    qc = QuantumCircuit(2, 2)
    if tag & 1:
        qc.x(0)
    if tag & 2:
        qc.x(1)
    qc.measure([0, 1], [0, 1])
    return qc


class TestCrossProcessAcceptance:
    def test_two_processes_share_the_disk_cache(self, tmp_path):
        """The acceptance check, in-process: two *fresh* service instances
        over one cache dir behave exactly like two separate runs."""
        circuits = [_wide_counts_circuit(t) for t in range(4)]
        first = ExecutionService(max_workers=2, cache_dir=tmp_path)
        a = first.submit(circuits, shots=30, seed=11).result(timeout=30)
        assert first.stats()["simulations"] == 4
        first.shutdown()
        second = ExecutionService(max_workers=2, cache_dir=tmp_path)
        b = second.submit(circuits, shots=30, seed=11).result(timeout=30)
        stats = second.stats()
        assert stats["simulations"] == 0
        assert stats["cache_disk_hits"] == 4
        for index in range(4):
            assert a.get_counts(index) == b.get_counts(index)
        second.shutdown()
