"""Bit-identity of the PassManager pipeline against the pre-refactor transpile.

``_legacy_transpile`` below is a pinned, verbatim copy of the monolithic
``transpile()`` body this repo shipped before the pass-manager refactor
(plus the pre-existing ``optimize()`` level semantics, which are unchanged).
The refactor's acceptance criterion is that the new pipeline produces
bit-identical circuits for every optimization level; the one sanctioned
difference is the explicit ``DropBarriers`` pass (level >= 1), whose
counts-parity is proven separately — barriers draw nothing in either
sampler, noisy or ideal.
"""

import math

import pytest

from repro.errors import TranspilerError
from repro.quantum import library
from repro.quantum.analysis import circuit_facts, structural_errors
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService, get_backend
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import (
    DEFAULT_BASIS,
    Layout,
    decompose_to_basis,
    dense_layout,
    drop_barriers,
    optimize,
    route,
    transpile_core,
)


def _legacy_transpile(
    circuit,
    backend=None,
    coupling_map=None,
    basis_gates=None,
    initial_layout=None,
    optimization_level=1,
):
    """The pre-refactor pipeline, pinned (including its missing
    ``final_layout`` on the no-coupling-map path)."""
    facts = circuit_facts(circuit)
    if facts.structurally_defective:
        first = structural_errors(facts)[0]
        raise TranspilerError(
            f"circuit is structurally defective: [{first.code}] {first.message}"
        )
    if backend is not None:
        if coupling_map is None:
            coupling_map = backend.coupling_map
        if basis_gates is None:
            basis_gates = backend.basis_gates
    basis = tuple(basis_gates) if basis_gates is not None else DEFAULT_BASIS

    instructions = decompose_to_basis(circuit.instructions, basis)

    if coupling_map is None:
        out = QuantumCircuit(
            circuit.num_qubits, circuit.num_clbits, name=f"{circuit.name}_t"
        )
        out._instructions = optimize(instructions, optimization_level)
        out.metadata = dict(circuit.metadata)
        out.metadata["layout"] = {i: i for i in range(circuit.num_qubits)}
        return out

    if circuit.num_qubits > coupling_map.num_qubits:
        raise TranspilerError(
            f"circuit needs {circuit.num_qubits} qubits, coupling map has "
            f"{coupling_map.num_qubits}"
        )
    if initial_layout is not None:
        if len(initial_layout) != circuit.num_qubits:
            raise TranspilerError(
                f"initial_layout has {len(initial_layout)} entries for a "
                f"{circuit.num_qubits}-qubit circuit"
            )
        for phys in initial_layout:
            if not 0 <= phys < coupling_map.num_qubits:
                raise TranspilerError(
                    f"initial_layout entry {phys} is outside the device "
                    f"(0..{coupling_map.num_qubits - 1})"
                )
        layout = Layout.from_sequence(list(initial_layout))
    else:
        layout = dense_layout(circuit, coupling_map)

    routed, final_layout = route(instructions, layout, coupling_map)
    routed = decompose_to_basis(routed, basis)
    routed = optimize(routed, optimization_level)

    out = QuantumCircuit(
        coupling_map.num_qubits, circuit.num_clbits, name=f"{circuit.name}_t"
    )
    out._instructions = routed
    out.metadata = dict(circuit.metadata)
    out.metadata["layout"] = layout.to_dict()
    out.metadata["final_layout"] = final_layout.to_dict()
    return out


def _new_transpile(circuit, backend=None, coupling_map=None, basis_gates=None,
                   initial_layout=None, optimization_level=1):
    """The refactored core, resolved the same way the service does."""
    from repro.quantum.transpiler import resolve_lowering

    coupling_map, basis = resolve_lowering(backend, coupling_map, basis_gates)
    return transpile_core(
        circuit, coupling_map, basis, initial_layout, optimization_level
    )


def _measure_interleaved():
    qc = QuantumCircuit(2, 2, name="interleaved")
    qc.rz(0.4, 0)
    qc.rz(0.6, 0)
    qc.h(1)
    qc.measure(0, 0)
    qc.rx(0.3, 0)
    qc.rx(-0.3, 0)
    qc.measure(1, 1)
    return qc


def _conditioned():
    qc = QuantumCircuit(2, 2, name="conditioned")
    qc.h(0)
    qc.measure(0, 0)
    qc.append("x", [1], condition=(0, 1))
    qc.append("rz", [1], params=(0.25,), condition=(0, 1))
    qc.measure(1, 1)
    return qc


def _barrier_circuit():
    qc = QuantumCircuit(3, 3, name="barriered")
    qc.h(0)
    qc.barrier()
    qc.cx(0, 1)
    qc.barrier(0, 1)
    qc.cx(1, 2)
    qc.rz(0.7, 2)
    qc.barrier()
    qc.rz(-0.7, 2)
    qc.measure_all()
    return qc


BARRIER_FREE = [
    library.ghz_state(3, measure=True),
    library.qft(3),
    library.grover(3, ["101"]),
    library.bell_pair(measure=True),
    _measure_interleaved(),
    _conditioned(),
]

TARGETS = [
    dict(),
    dict(coupling_map=CouplingMap.linear(5)),
    dict(backend="fake_falcon"),
    dict(coupling_map=CouplingMap.linear(5), initial_layout=[4, 3, 2]),
    dict(basis_gates=("u", "cx")),
]


def _resolve_target(target: dict) -> dict:
    resolved = dict(target)
    if isinstance(resolved.get("backend"), str):
        resolved["backend"] = get_backend(resolved["backend"])
    return resolved


class TestBitIdentityWithLegacy:
    @pytest.mark.parametrize("level", [0, 1, 2])
    @pytest.mark.parametrize("target_index", range(len(TARGETS)))
    @pytest.mark.parametrize(
        "circuit", BARRIER_FREE, ids=lambda c: c.name
    )
    def test_barrier_free_circuits_identical(
        self, circuit, target_index, level
    ):
        target = _resolve_target(TARGETS[target_index])
        if (
            "initial_layout" in target
            and len(target["initial_layout"]) != circuit.num_qubits
        ):
            pytest.skip("layout width does not match this circuit")
        old = _legacy_transpile(circuit, optimization_level=level, **target)
        new = _new_transpile(circuit, optimization_level=level, **target)
        assert new.instructions == old.instructions
        assert new.num_qubits == old.num_qubits
        assert new.num_clbits == old.num_clbits
        assert new.name == old.name
        assert new.metadata["layout"] == old.metadata["layout"]
        if "final_layout" in old.metadata:
            assert new.metadata["final_layout"] == old.metadata["final_layout"]
        else:
            # The satellite fix: the no-coupling-map path now records the
            # identity final layout instead of omitting the key.
            assert new.metadata["final_layout"] == {
                i: i for i in range(circuit.num_qubits)
            }

    def test_level_zero_keeps_barriers_identically(self):
        qc = _barrier_circuit()
        old = _legacy_transpile(qc, optimization_level=0)
        new = _new_transpile(qc, optimization_level=0)
        assert new.instructions == old.instructions
        assert any(i.name == "barrier" for i in new.instructions)

    @pytest.mark.parametrize("level", [1, 2])
    def test_drop_barriers_is_the_only_divergence(self, level):
        qc = _barrier_circuit()
        old = _legacy_transpile(qc, optimization_level=level)
        new = _new_transpile(qc, optimization_level=level)
        assert all(i.name != "barrier" for i in new.instructions)
        # Stripping barriers from the legacy stream and re-running its own
        # peephole stack reproduces the new stream exactly.
        relegacy = _legacy_transpile(qc, optimization_level=level)
        stripped = [i for i in relegacy.instructions if i.name != "barrier"]
        assert new.instructions == optimize(stripped, level)
        assert old.metadata["layout"] == new.metadata["layout"]

    @pytest.mark.parametrize("message", [
        "outside the device",
        "entries for a",
        "coupling map has",
    ])
    def test_error_messages_match_legacy(self, message):
        qc = library.ghz_state(3, measure=True)
        cases = {
            "outside the device": dict(
                coupling_map=CouplingMap.linear(5), initial_layout=[0, 1, 9]
            ),
            "entries for a": dict(
                coupling_map=CouplingMap.linear(5), initial_layout=[0, 1]
            ),
            "coupling map has": dict(coupling_map=CouplingMap.linear(2)),
        }
        kwargs = cases[message]
        with pytest.raises(TranspilerError, match=message) as old_err:
            _legacy_transpile(qc, **kwargs)
        with pytest.raises(TranspilerError, match=message) as new_err:
            _new_transpile(qc, **kwargs)
        assert str(new_err.value) == str(old_err.value)


class TestObservationalEquivalence:
    """Transpiled output is observationally equivalent to its input:
    bit-identical counts under a fixed seed, across optimization levels,
    on the serial and the batch executor."""

    @pytest.fixture(params=["thread", "batch"])
    def service(self, request):
        svc = ExecutionService(use_cache=False, executor=request.param)
        yield svc
        svc.shutdown()

    @pytest.mark.parametrize(
        "circuit",
        [c for c in BARRIER_FREE if c.num_clbits],
        ids=lambda c: c.name,
    )
    def test_counts_match_input_across_levels(self, service, circuit):
        reference = (
            service.run(circuit, shots=512, seed=77).result().get_counts()
        )
        for level in (0, 1, 2):
            lowered = _new_transpile(circuit, optimization_level=level)
            counts = (
                service.run(lowered, shots=512, seed=77).result().get_counts()
            )
            assert counts == reference, f"level {level} diverged"

    def test_routed_counts_match_across_levels(self, service):
        circuit = library.grover(3, ["101"])
        cmap = CouplingMap.linear(5)
        baseline = None
        for level in (0, 1, 2):
            lowered = _new_transpile(
                circuit, coupling_map=cmap, optimization_level=level
            )
            counts = (
                service.run(lowered, shots=512, seed=5).result().get_counts()
            )
            if baseline is None:
                baseline = counts
            else:
                assert counts == baseline, f"level {level} diverged"

    def test_barrier_drop_preserves_noisy_counts(self, service):
        """Barriers draw nothing — even per-instruction noise trajectories
        are unchanged when they disappear, so counts stay bit-identical.

        The comparison isolates exactly the barrier removal: the same
        level-0 lowering with and without its barrier directives (level 1
        would *also* let rotations cancel across the former boundaries,
        which legitimately changes the noise-draw schedule).
        """
        qc = _barrier_circuit()
        backend = get_backend("fake_falcon")
        kept = _new_transpile(qc, optimization_level=0)
        assert any(i.name == "barrier" for i in kept.instructions)
        dropped = QuantumCircuit(
            kept.num_qubits, kept.num_clbits, name=kept.name
        )
        dropped._instructions = drop_barriers(kept.instructions)
        dropped.metadata = dict(kept.metadata)
        assert all(i.name != "barrier" for i in dropped.instructions)
        counts_kept = (
            service.run(kept, backend=backend, shots=400, seed=13)
            .result()
            .get_counts()
        )
        counts_dropped = (
            service.run(dropped, backend=backend, shots=400, seed=13)
            .result()
            .get_counts()
        )
        assert counts_kept == counts_dropped

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzzed_circuits_counts_match_across_levels(self, service, seed):
        """Seed-fuzzed circuits (random 1q/2q gate soup): every level's
        lowering samples bit-identical counts to the raw circuit."""
        circuit = library.random_circuit(3, depth=8, seed=seed, measure=True)
        reference = (
            service.run(circuit, shots=256, seed=seed).result().get_counts()
        )
        for level in (0, 1, 2):
            lowered = _new_transpile(circuit, optimization_level=level)
            counts = (
                service.run(lowered, shots=256, seed=seed)
                .result()
                .get_counts()
            )
            assert counts == reference, f"seed {seed} level {level} diverged"

    def test_conditioned_rotation_merge_respects_conditions(self, service):
        qc = _conditioned()
        for level in (0, 1, 2):
            lowered = _new_transpile(qc, optimization_level=level)
            conditioned = [
                i for i in lowered.instructions if i.condition is not None
            ]
            assert conditioned, "conditions must survive transpilation"
            assert all(i.condition == (0, 1) for i in conditioned)


def test_mergeable_rotations_actually_merge():
    qc = QuantumCircuit(1, 1, name="merge")
    qc.rz(0.5, 0)
    qc.rz(0.25, 0)
    qc.measure(0, 0)
    lowered = _new_transpile(qc, basis_gates=("rz", "sx", "cx"))
    rz_angles = [
        i.params[0] for i in lowered.instructions if i.name == "rz"
    ]
    assert rz_angles == [pytest.approx(0.75)]
    assert math.isclose(rz_angles[0], 0.75)
