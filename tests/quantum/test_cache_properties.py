"""Property-based/fuzz harness for the cache tiers.

Seeded ``random`` only (no new dependencies): random payloads must survive
disk and remote round-trips bit-identically, and eviction invariants must
hold over arbitrary operation sequences — the store never exceeds its byte
budget after a ``put``, LRU order decides who dies, and the entry just
written is never the victim of its own write.
"""

import os
import random
import threading

import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    CacheKey,
    CacheLimits,
    CacheServer,
    DiskResultCache,
    ExecutionService,
)

SEED = 20260728


def _rng(tag: str) -> random.Random:
    return random.Random(f"{SEED}:{tag}")


def random_key(rng: random.Random) -> CacheKey:
    return CacheKey(
        circuit=f"{rng.getrandbits(64):016x}",
        backend=rng.choice(["local_simulator", "fake_brisbane", "qec_memory"]),
        shots=rng.randint(1, 1 << 20),
        seed=rng.randint(-(1 << 40), 1 << 62),
        noise=rng.choice(["ideal", f"{rng.getrandbits(64):016x}"]),
        memory=rng.random() < 0.5,
    )


def random_counts(rng: random.Random) -> dict[str, int]:
    width = rng.randint(1, 10)
    n = rng.randint(1, 12)
    counts: dict[str, int] = {}
    for _ in range(n):
        if rng.random() < 0.1:
            # Pathological-but-valid JSON string keys must survive too.
            label = "".join(rng.choice("μΩ∆ 01\"\\") for _ in range(4))
        else:
            label = "".join(rng.choice("01") for _ in range(width))
        counts[label] = rng.randint(0, 10**9)
    return counts


def random_memory(rng: random.Random) -> list[str] | None:
    roll = rng.random()
    if roll < 0.4:
        return None
    if roll < 0.5:
        return []
    width = rng.randint(1, 8)
    return [
        "".join(rng.choice("01") for _ in range(width))
        for _ in range(rng.randint(1, 30))
    ]


def random_payload(rng: random.Random):
    return random_key(rng), random_counts(rng), random_memory(rng)


class TestRoundTripProperties:
    def test_disk_roundtrip_is_bit_identical(self, tmp_path):
        rng = _rng("disk-roundtrip")
        disk = DiskResultCache(tmp_path)
        payloads = [random_payload(rng) for _ in range(40)]
        for key, counts, memory in payloads:
            disk.put(key, counts, memory)
        for key, counts, memory in payloads:
            assert disk.get(key) == (counts, memory)

    def test_remote_roundtrip_is_bit_identical(self, tmp_path):
        rng = _rng("remote-roundtrip")
        payloads = [random_payload(rng) for _ in range(25)]
        with CacheServer(tmp_path) as server:
            from repro.quantum.execution import RemoteResultCache

            client = RemoteResultCache(server.url)
            for key, counts, memory in payloads:
                client.put(key, counts, memory)
            for key, counts, memory in payloads:
                assert client.get(key) == (counts, memory)
            assert client.errors == 0
        # What the server persisted is exactly what the disk tier would have:
        disk = DiskResultCache(tmp_path)
        for key, counts, memory in payloads:
            assert disk.get(key) == (counts, memory)


class TestEvictionInvariants:
    def test_max_bytes_never_exceeded_after_any_put(self, tmp_path):
        rng = _rng("max-bytes")
        limits = CacheLimits(max_bytes=1500)
        disk = DiskResultCache(tmp_path, limits=limits)
        for _ in range(60):
            disk.put(*random_payload(rng))
            assert disk.size_bytes() <= limits.max_bytes

    def test_put_never_evicts_the_entry_just_written(self, tmp_path):
        rng = _rng("protect")
        disk = DiskResultCache(tmp_path, limits=CacheLimits(max_entries=1))
        for _ in range(10):
            key, counts, memory = random_payload(rng)
            disk.put(key, counts, memory)
            assert len(disk) == 1
            assert disk.get(key) == (counts, memory)

    def test_oversized_entry_is_evicted_to_hold_the_byte_bound(self, tmp_path):
        """The one exception to write-retention: an entry that alone busts
        ``max_bytes`` cannot stay, or the bound would be a lie."""
        rng = _rng("oversized")
        disk = DiskResultCache(tmp_path, limits=CacheLimits(max_bytes=120))
        key = random_key(rng)
        disk.put(key, {f"{i:010b}": 10**9 for i in range(50)}, None)
        assert disk.size_bytes() <= 120
        assert disk.get(key) is None

    def test_lru_order_respected(self, tmp_path):
        disk = DiskResultCache(tmp_path, limits=CacheLimits(max_entries=3))
        rng = _rng("lru")
        keys = [random_key(rng) for _ in range(4)]
        base = 1_000_000_000
        for tick, key in enumerate(keys[:3]):
            disk.put(key, {"0": 1}, None)
            os.utime(disk.path_for(key), (base + tick, base + tick))
        # Touch the oldest via get(): it must now outlive the middle one.
        assert disk.get(keys[0]) is not None
        os.utime(disk.path_for(keys[0]), (base + 10, base + 10))
        disk.put(keys[3], {"0": 1}, None)
        assert disk.get(keys[1]) is None  # least recently used: evicted
        assert disk.get(keys[0]) is not None
        assert disk.get(keys[2]) is not None
        assert disk.get(keys[3]) is not None

    def test_max_age_prunes_idle_entries_only(self, tmp_path):
        rng = _rng("age")
        disk = DiskResultCache(tmp_path)
        stale, fresh = random_key(rng), random_key(rng)
        disk.put(stale, {"0": 1}, None)
        old = 1_000_000_000.0
        os.utime(disk.path_for(stale), (old, old))
        disk.put(fresh, {"1": 2}, None)
        assert disk.prune(CacheLimits(max_age_seconds=3600)) == 1
        assert disk.get(stale) is None
        assert disk.get(fresh) is not None

    def test_age_sweep_deadline_runs_on_the_monotonic_clock(self, tmp_path):
        """Regression: the periodic age-sweep deadline was compared against
        wall-clock time.time(), so a backwards clock step (NTP correction,
        VM resume) deferred age eviction indefinitely.  The deadline now
        lives on an injectable monotonic clock: entry *ages* stay mtime vs
        wall time, but "is the next sweep due" follows monotonic time only.
        """
        clock = [0.0]
        limits = CacheLimits(max_age_seconds=3600)
        disk = DiskResultCache(tmp_path, limits=limits, clock=lambda: clock[0])
        rng = _rng("sweepclock")
        stale, k2, k3 = random_key(rng), random_key(rng), random_key(rng)
        disk.put(stale, {"0": 1}, None)  # first put: sweep runs, rearms at 60
        old = 1_000_000_000.0
        os.utime(disk.path_for(stale), (old, old))
        clock[0] = 10.0  # before the rearmed deadline: no sweep
        disk.put(k2, {"0": 1}, None)
        # Existence via the path, not get(): a get would touch the mtime
        # and un-stale the very entry the sweep is supposed to evict.
        assert disk.path_for(stale).exists()
        # However far backwards the wall clock steps, the monotonic deadline
        # still arrives: advance past it and the stale entry is swept.
        clock[0] = 61.0
        disk.put(k3, {"0": 1}, None)
        assert not disk.path_for(stale).exists()
        assert disk.get(k2) is not None
        assert disk.get(k3) is not None

    def test_prune_without_bounds_is_a_noop(self, tmp_path):
        disk = DiskResultCache(tmp_path)
        disk.put(random_key(_rng("noop")), {"0": 1}, None)
        assert disk.prune() == 0
        assert len(disk) == 1

    def test_randomized_operation_sequences_hold_all_invariants(self, tmp_path):
        """Fuzz: interleaved put/get/prune with a model of what must exist.

        Invariants after every operation: the byte and entry bounds hold, a
        get returns either a miss or exactly the payload last stored, and the
        key written by the latest put is still readable (it always fits the
        budget here).
        """
        rng = _rng("ops")
        limits = CacheLimits(max_bytes=4000, max_entries=12)
        disk = DiskResultCache(tmp_path, limits=limits)
        model: dict[CacheKey, tuple] = {}
        keys: list[CacheKey] = []
        for step in range(150):
            roll = rng.random()
            if roll < 0.55 or not keys:
                key, counts, memory = random_payload(rng)
                disk.put(key, counts, memory)
                model[key] = (counts, memory)
                keys.append(key)
                assert disk.get(key) == (counts, memory), f"step {step}"
            elif roll < 0.9:
                key = rng.choice(keys)
                got = disk.get(key)
                assert got is None or got == model[key], f"step {step}"
            else:
                disk.prune()
            assert disk.size_bytes() <= limits.max_bytes, f"step {step}"
            assert len(disk) <= limits.max_entries, f"step {step}"
        assert disk.evictions > 0  # the sequence actually exercised eviction


def _stress_workload() -> list[QuantumCircuit]:
    circuits = []
    for tag in range(4):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        if tag & 1:
            qc.x(1)
        if tag & 2:
            qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        circuits.append(qc)
    return circuits


class TestConcurrencyStress:
    def test_hammered_service_with_evicting_disk_stays_bit_identical(
        self, tmp_path
    ):
        """N threads submit duplicate circuits while the disk tier churns
        under a tiny ``max_bytes``: single-flight dedup must still hold (one
        simulation per distinct circuit) and every thread must see counts
        bit-identical to an uncached run."""
        circuits = _stress_workload()
        baseline = ExecutionService(max_workers=1, use_cache=False)
        expected = baseline.run(circuits, shots=50, seed=9).result()
        baseline.shutdown()

        service = ExecutionService(
            max_workers=4,
            cache_dir=tmp_path,
            cache_limits=CacheLimits(max_bytes=400),  # a couple entries, tops
        )
        results: list = [None] * 8
        errors: list = []

        def hammer(slot: int) -> None:
            try:
                results[slot] = service.run(circuits, shots=50, seed=9).result()
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(slot,)) for slot in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        for result in results:
            assert result is not None
            for index in range(len(circuits)):
                assert result.get_counts(index) == expected.get_counts(index)
        stats = service.stats()
        # Single-flight + the in-memory LRU: disk eviction can never force a
        # re-simulation, and concurrent identical misses elect one leader.
        assert stats["simulations"] == len(circuits)
        assert DiskResultCache(tmp_path).size_bytes() <= 400
        service.shutdown()


class TestThreeWayParity:
    def test_memory_disk_remote_tiers_agree_and_warm_passes_simulate_nothing(
        self, tmp_path
    ):
        circuits = _stress_workload()
        shots, seed = 40, 17

        mem_only = ExecutionService(max_workers=2)
        a = mem_only.submit(circuits, shots=shots, seed=seed).result(timeout=30)
        mem_only.shutdown()

        disk_dir = tmp_path / "disk"
        with_disk = ExecutionService(max_workers=2, cache_dir=disk_dir)
        b = with_disk.submit(circuits, shots=shots, seed=seed).result(timeout=30)
        with_disk.shutdown()

        with CacheServer(tmp_path / "server") as server:
            full = ExecutionService(
                max_workers=2,
                cache_dir=tmp_path / "disk2",
                remote_url=server.url,
            )
            c = full.submit(circuits, shots=shots, seed=seed).result(timeout=30)
            full.shutdown()

            for index in range(len(circuits)):
                assert (
                    a.get_counts(index)
                    == b.get_counts(index)
                    == c.get_counts(index)
                )

            # Warm pass 1: a fresh process stand-in over the disk store.
            warm_disk = ExecutionService(max_workers=2, cache_dir=disk_dir)
            warm_disk.submit(circuits, shots=shots, seed=seed).result(timeout=30)
            stats = warm_disk.stats()
            assert stats["simulations"] == 0
            assert stats["cache_disk_hits"] == len(circuits)
            warm_disk.shutdown()

            # Warm pass 2 — the acceptance scenario: a *cold* worker (no
            # local cache directory at all) pointed at the warm server.
            cold_worker = ExecutionService(max_workers=2, remote_url=server.url)
            d = cold_worker.submit(circuits, shots=shots, seed=seed).result(
                timeout=30
            )
            stats = cold_worker.stats()
            assert stats["simulations"] == 0
            assert stats["simulations_deduped"] == 0
            assert stats["cache_remote_hits"] == len(circuits)
            for index in range(len(circuits)):
                assert d.get_counts(index) == a.get_counts(index)
            cold_worker.shutdown()

    def test_memory_parity_across_tiers(self, tmp_path):
        """`memory=True` shot lists survive every tier bit-identically."""
        qc = _stress_workload()[3]
        reference = ExecutionService(max_workers=1, use_cache=False)
        expected = reference.run(qc, shots=25, seed=5, memory=True).result()
        reference.shutdown()
        with CacheServer(tmp_path / "server") as server:
            full = ExecutionService(
                max_workers=1, cache_dir=tmp_path / "d", remote_url=server.url
            )
            full.run(qc, shots=25, seed=5, memory=True)
            full.shutdown()
            cold = ExecutionService(max_workers=1, remote_url=server.url)
            replay = cold.run(qc, shots=25, seed=5, memory=True).result()
            assert replay.get_memory() == expected.get_memory()
            assert cold.stats()["simulations"] == 0
            cold.shutdown()


class TestCacheLimitsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_bytes": 0},
            {"max_bytes": -1},
            {"max_entries": 0},
            {"max_age_seconds": -2.0},
        ],
    )
    def test_non_positive_bounds_rejected(self, kwargs):
        with pytest.raises(ValueError, match="must be positive"):
            CacheLimits(**kwargs)

    def test_from_env(self):
        env = {
            "REPRO_CACHE_MAX_BYTES": "1048576",
            "REPRO_CACHE_MAX_AGE": "86400",
        }
        limits = CacheLimits.from_env(env)
        assert limits == CacheLimits(max_bytes=1048576, max_age_seconds=86400.0)
        assert CacheLimits.from_env({}) is None

    def test_from_env_rejects_garbage_with_a_clear_error(self):
        """Regression: a mistyped bound must name the variable, not surface
        as a raw float() traceback (and never silently unbound the store)."""
        with pytest.raises(ValueError, match="REPRO_CACHE_MAX_BYTES"):
            CacheLimits.from_env({"REPRO_CACHE_MAX_BYTES": "1GB"})


class TestMalformedValueTolerance:
    """Regression: well-formed JSON carrying nonsense values must decode to
    a miss in every tier, never raise out of a cache lookup."""

    @pytest.mark.parametrize(
        "mutation",
        [
            {"counts": {"0": "garbage"}},
            {"counts": {"0": None}},
            {"memory": 5},
        ],
    )
    def test_disk_get_treats_nonsense_values_as_corruption(
        self, tmp_path, mutation
    ):
        import json as json_module

        rng = _rng("nonsense")
        disk = DiskResultCache(tmp_path)
        key = random_key(rng)
        disk.put(key, {"0": 1}, None)
        path = disk.path_for(key)
        entry = json_module.loads(path.read_text(encoding="utf-8"))
        entry.update(mutation)
        path.write_text(json_module.dumps(entry), encoding="utf-8")
        assert disk.get(key) is None
        assert not path.exists()  # discarded like any other corruption

    def test_remote_get_treats_nonsense_values_as_miss(self, tmp_path):
        import json as json_module

        from repro.quantum.execution import RemoteResultCache
        from repro.quantum.execution.disk_cache import key_digest

        rng = _rng("nonsense-remote")
        key = random_key(rng)
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url)
            client.put(key, {"0": 1}, None)
            path = tmp_path / f"{key_digest(key)}.json"
            entry = json_module.loads(path.read_text(encoding="utf-8"))
            entry["counts"] = {"0": "garbage"}
            path.write_text(json_module.dumps(entry), encoding="utf-8")
            assert client.get(key) is None
            assert client.errors == 0
