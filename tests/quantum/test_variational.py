"""The variational workload family: ansatz builders and the batched optimizer."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService
from repro.quantum.library import qaoa_ansatz as library_qaoa_ansatz
from repro.quantum.variational import (
    OPTIMIZE_METHODS,
    VariationalResult,
    hardware_efficient_ansatz,
    maxcut_cut_size,
    maxcut_energy,
    minimize,
    qaoa_ansatz,
)

RING = [(0, 1), (1, 2), (2, 3), (3, 0)]


class TestQaoaAnsatz:
    def test_structure(self):
        qc = qaoa_ansatz(4, RING, reps=2)
        names = [inst.name for inst in qc]
        assert names[:4] == ["h"] * 4
        assert names.count("rzz") == 2 * len(RING)
        assert names.count("rx") == 2 * 4
        assert names.count("measure") == 4
        assert [p.name for p in qc.parameters] == [
            "gamma_0", "beta_0", "gamma_1", "beta_1",
        ]

    def test_measure_flag(self):
        qc = qaoa_ansatz(3, [(0, 1), (1, 2)], measure=False)
        assert qc.num_clbits == 0
        assert all(inst.name != "measure" for inst in qc)

    def test_validation(self):
        with pytest.raises(CircuitError, match="at least 2"):
            qaoa_ansatz(1, [(0, 0)])
        with pytest.raises(CircuitError, match="reps"):
            qaoa_ansatz(3, [(0, 1)], reps=0)
        with pytest.raises(CircuitError, match="self-loop"):
            qaoa_ansatz(3, [(1, 1)])
        with pytest.raises(CircuitError, match="out of range"):
            qaoa_ansatz(3, [(0, 5)])
        with pytest.raises(CircuitError, match="no edges"):
            qaoa_ansatz(3, [])
        with pytest.raises(CircuitError, match="not a pair"):
            qaoa_ansatz(3, [(0, 1, 2)])

    def test_library_reexport(self):
        assert library_qaoa_ansatz is qaoa_ansatz


class TestHardwareEfficientAnsatz:
    def test_structure(self):
        qc = hardware_efficient_ansatz(3, reps=2)
        names = [inst.name for inst in qc]
        assert names.count("ry") == 3 * 3  # (reps + 1) rotation layers
        assert names.count("cx") == 2 * 2  # reps entangling chains
        assert qc.num_parameters == 9
        assert [p.name for p in qc.parameters][:3] == [
            "theta_0_0", "theta_0_1", "theta_0_2",
        ]

    def test_validation(self):
        with pytest.raises(CircuitError):
            hardware_efficient_ansatz(0)
        with pytest.raises(CircuitError):
            hardware_efficient_ansatz(2, reps=-1)


class TestMaxcutEnergy:
    def test_cut_size_uses_counts_bit_convention(self):
        # counts keys put clbit 0 rightmost: "01" = qubit 0 measured 1.
        assert maxcut_cut_size("01", [(0, 1)]) == 1
        assert maxcut_cut_size("11", [(0, 1)]) == 0
        assert maxcut_cut_size("0101", RING) == 4
        assert maxcut_cut_size("0011", RING) == 2

    def test_energy_is_negated_expectation(self):
        energy = maxcut_energy(RING)
        assert energy({"0101": 7}) == -4.0
        assert energy({"0101": 1, "0000": 1}) == -2.0
        with pytest.raises(CircuitError):
            energy({})


class TestMinimize:
    def test_deterministic_and_improving(self):
        ansatz = qaoa_ansatz(4, RING, reps=1)
        runs = [
            minimize(
                maxcut_energy(RING), ansatz, backend="ideal", shots=512,
                seed=7, maxiter=10, service=ExecutionService(),
            )
            for _ in range(2)
        ]
        first, second = runs
        assert isinstance(first, VariationalResult)
        assert first.history == second.history
        assert first.best_parameters == second.best_parameters
        assert first.best_value <= first.history[0]
        assert len(first.history) == 11
        # history tracks the best-so-far: monotone non-increasing.
        assert all(a >= b for a, b in zip(first.history, first.history[1:]))

    def test_each_iteration_is_one_batch(self):
        svc = ExecutionService()
        maxiter = 6
        result = minimize(
            maxcut_energy(RING), qaoa_ansatz(4, RING), backend="ideal",
            shots=128, seed=3, maxiter=maxiter, service=svc,
        )
        stats = svc.stats()
        # One batch for the initial point, one per iteration after that.
        assert stats["jobs_submitted"] == maxiter + 1
        assert stats["circuits_executed"] == result.evaluations
        assert result.evaluations == 1 + 2 * maxiter

    def test_whole_run_costs_one_transpile(self):
        svc = ExecutionService(executor="batch")
        basis = ("rx", "ry", "rz", "rzz", "h", "cx", "measure")
        ansatz = qaoa_ansatz(4, RING, reps=1)
        with svc.stats_scope() as scope:
            bound = [
                svc.transpile(ansatz.bind(point), basis_gates=basis)
                for point in (
                    {"gamma_0": 0.1 * k, "beta_0": 0.2 * k} for k in range(12)
                )
            ]
            svc.run(bound, backend="ideal", shots=64, seed=5).result()
        assert scope.get("transpiles") == 1
        assert scope.get("transpile_cache_hits") == 11
        assert scope.get("batch_groups") == 1

    def test_coordinate_descent(self):
        result = minimize(
            maxcut_energy(RING), qaoa_ansatz(4, RING), backend="ideal",
            shots=256, seed=1, maxiter=8, method="coordinate",
            service=ExecutionService(),
        )
        assert result.method == "coordinate"
        assert result.best_value <= result.history[0]

    def test_explicit_initial_point(self):
        result = minimize(
            maxcut_energy(RING), qaoa_ansatz(4, RING), backend="ideal",
            shots=128, seed=2, maxiter=2, initial=[0.4, -0.2],
            service=ExecutionService(),
        )
        assert result.iterations == 2

    def test_validation(self):
        ansatz = qaoa_ansatz(4, RING)
        energy = maxcut_energy(RING)
        with pytest.raises(CircuitError, match="unknown method"):
            minimize(energy, ansatz, method="adam")
        with pytest.raises(CircuitError, match="no parameters"):
            concrete = QuantumCircuit(1, 1)
            concrete.h(0)
            concrete.measure([0], [0])
            minimize(energy, concrete)
        with pytest.raises(CircuitError, match="no classical bits"):
            minimize(energy, qaoa_ansatz(4, RING, measure=False))
        with pytest.raises(CircuitError, match="parameter"):
            minimize(energy, ansatz, initial=[0.1])
        with pytest.raises(CircuitError, match="non-finite"):
            minimize(energy, ansatz, initial=[np.nan, 0.0])
        with pytest.raises(CircuitError, match="maxiter"):
            minimize(energy, ansatz, maxiter=-1)
        with pytest.raises(CircuitError, match="shots"):
            minimize(energy, ansatz, shots=0)

    def test_methods_registry(self):
        assert OPTIMIZE_METHODS == ("spsa", "coordinate")


class TestCli:
    def test_variational_command(self, capsys):
        assert main([
            "variational", "--qubits", "4", "--iters", "4",
            "--shots", "128", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "qaoa-4q-p1" in out
        assert "best expected cut" in out
        assert "gamma_0" in out

    def test_variational_hea_coordinate(self, capsys):
        assert main([
            "variational", "--ansatz", "hea", "--method", "coordinate",
            "--iters", "2", "--shots", "64", "--reps", "1",
        ]) == 0
        assert "hea-4q-r1" in capsys.readouterr().out

    def test_variational_unknown_backend(self, capsys):
        assert main(["variational", "--backend", "nope"]) == 2
        assert "error:" in capsys.readouterr().out
