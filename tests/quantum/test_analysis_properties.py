"""Property tests for the static analyzer against the live engines.

The analyzer's contract is *agreement*: a circuit it calls clean executes; a
circuit it flags with a ``QA1xx`` error makes the engines raise; its facts
are deterministic; and turning the pre-flight on (``validate="strict"``)
never changes the results of clean circuits on any executor strategy.  The
planner-routing property is the regression guard for the facts dedupe: the
batch planner's classification must be exactly predictable from each unit's
:class:`CircuitFacts`.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import batchsim
from repro.quantum.analysis import analyze_circuit, circuit_facts
from repro.quantum.backend import Backend, LocalSimulator
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.execution import ExecutionService
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import MAX_DENSE_QUBITS

# Gate pool for random structure generation: (method, n_params).
_ONE_Q = [("h", 0), ("x", 0), ("s", 0), ("t", 0), ("rx", 1), ("ry", 1), ("rz", 1)]
_TWO_Q = [("cx", 0), ("cz", 0), ("crx", 1), ("swap", 0)]


def random_circuit(
    rng: np.random.Generator, num_qubits: int, depth: int
) -> QuantumCircuit:
    qc = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(depth):
        if num_qubits > 1 and rng.random() < 0.3:
            name, n_params = _TWO_Q[rng.integers(len(_TWO_Q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            args = [int(a), int(b)]
        else:
            name, n_params = _ONE_Q[rng.integers(len(_ONE_Q))]
            args = [int(rng.integers(num_qubits))]
        params = [float(rng.uniform(0, 2 * np.pi)) for _ in range(n_params)]
        getattr(qc, name)(*params, *args)
    qc.measure_all()
    return qc


def noisy_backend(p: float = 0.02, readout: float = 0.01) -> Backend:
    return Backend(
        name="analysis-noisy",
        num_qubits=8,
        noise_model=NoiseModel.uniform_depolarizing(p, 2 * p, readout),
    )


def mutate(qc: QuantumCircuit, rng: np.random.Generator) -> QuantumCircuit:
    """Inject structural variety: conditionals, resets, mid-measures."""
    out = qc.copy()
    roll = rng.random()
    if roll < 0.25:
        out.reset(int(rng.integers(out.num_qubits)))
        out.measure_all()
    elif roll < 0.5:
        out.measure(0, 0)
        out.append("x", [0], condition=(0, 1))
        out.measure_all()
    elif roll < 0.75:
        out.measure(0, 0)
        out.x(0)  # gate after measure
        out.measure_all()
    return out


def break_circuit(
    qc: QuantumCircuit, rng: np.random.Generator
) -> tuple[QuantumCircuit, str]:
    """Inject one structural defect; returns (circuit, expected QA code)."""
    out = qc.copy()
    kind = int(rng.integers(3))
    if kind == 0:
        out._instructions.insert(
            int(rng.integers(len(out._instructions) + 1)),
            Instruction("x", (out.num_qubits + int(rng.integers(3)),)),
        )
        return out, "QA101"
    if kind == 1:
        out._instructions.append(
            Instruction(
                "x", (0,), condition=(out.num_clbits + int(rng.integers(3)), 1)
            )
        )
        return out, "QA102"
    out._instructions.append(
        Instruction(
            "measure", (0,), (out.num_clbits + int(rng.integers(3)),)
        )
    )
    return out, "QA103"


class TestCleanMeansExecutable:
    def test_analyzer_clean_circuits_execute(self):
        rng = np.random.default_rng(101)
        backend = LocalSimulator()
        for trial in range(25):
            qc = mutate(
                random_circuit(rng, int(rng.integers(1, 5)),
                               int(rng.integers(1, 8))),
                rng,
            )
            analysis = analyze_circuit(qc)
            assert analysis.ok, [d.render() for d in analysis.errors]
            counts, _ = backend.execute_circuit(qc, 32, seed=trial)
            assert sum(counts.values()) == 32

    def test_strict_service_accepts_every_clean_circuit(self):
        rng = np.random.default_rng(102)
        workload = [
            mutate(random_circuit(rng, 3, int(rng.integers(2, 7))), rng)
            for _ in range(8)
        ]
        service = ExecutionService(validate="strict")
        try:
            result = service.run(workload, shots=16, seed=5).result()
            assert all(
                sum(result.get_counts(i).values()) == 16
                for i in range(len(workload))
            )
            assert service.stats()["rejected_static"] == 0
        finally:
            service.shutdown()


class TestFlaggedMeansRefused:
    def test_every_injected_defect_is_caught_and_refused(self):
        rng = np.random.default_rng(201)
        backend = LocalSimulator()
        for trial in range(25):
            base = random_circuit(rng, int(rng.integers(1, 4)),
                                  int(rng.integers(1, 6)))
            broken, code = break_circuit(base, rng)
            analysis = analyze_circuit(broken)
            assert code in [d.code for d in analysis.errors], (
                f"trial {trial}: analyzer missed injected {code}"
            )
            with pytest.raises(SimulationError, match=r"\[QA10[123]\]"):
                backend.execute_circuit(broken, 16, seed=trial)

    def test_non_unitary_gate_only_strict_preflight_refuses(self, monkeypatch):
        # The engines *cannot* refuse QA104 themselves: ``Statevector``
        # renormalises on construction, so a scaled-identity gate silently
        # yields plausible counts on every path.  The strict pre-flight is
        # the only line of defense, which is exactly why the analyzer
        # checks unitarity.
        from repro.errors import ValidationError
        from repro.quantum import gates

        lossy = gates.GateSpec("lossy", 1, 0, lambda: np.eye(2) * 0.7)
        monkeypatch.setitem(gates.GATE_SPECS, "lossy", lossy)
        qc = QuantumCircuit(1, 1)
        qc.append("lossy", [0])
        qc.measure(0, 0)
        assert "QA104" in [d.code for d in analyze_circuit(qc).errors]
        counts, _ = LocalSimulator().execute_circuit(qc, 16, seed=0)
        assert sum(counts.values()) == 16  # silently renormalised
        service = ExecutionService(validate="strict")
        try:
            with pytest.raises(ValidationError, match="QA104"):
                service.run(qc, shots=16, seed=0)
            assert service.stats()["simulations"] == 0
        finally:
            service.shutdown()


class TestDeterminism:
    def test_facts_and_analysis_are_deterministic(self):
        rng_a = np.random.default_rng(301)
        rng_b = np.random.default_rng(301)
        for _ in range(15):
            qc_a = mutate(random_circuit(rng_a, 3, 6), rng_a)
            qc_b = mutate(random_circuit(rng_b, 3, 6), rng_b)
            facts_a = circuit_facts(qc_a, fingerprint=True)
            facts_b = circuit_facts(qc_b, fingerprint=True)
            assert facts_a == facts_b
            assert facts_a == circuit_facts(qc_a, fingerprint=True)
            assert [
                (d.code, d.index, d.message)
                for d in analyze_circuit(qc_a).diagnostics
            ] == [
                (d.code, d.index, d.message)
                for d in analyze_circuit(qc_b).diagnostics
            ]


class TestStrictIsInert:
    @pytest.mark.parametrize("executor", ["thread", "process", "batch"])
    def test_strict_vs_off_bit_identical(self, executor):
        rng = np.random.default_rng(401)
        base = random_circuit(rng, 3, 5)
        workload = [base] + [
            mutate(random_circuit(rng, 2, int(rng.integers(2, 6))), rng)
            for _ in range(4)
        ]
        strict = ExecutionService(validate="strict", executor=executor)
        off = ExecutionService(validate="off", executor=executor)
        try:
            got = strict.run(
                workload, backend=noisy_backend(), shots=64, seed=401,
                memory=True,
            ).result()
            want = off.run(
                workload, backend=noisy_backend(), shots=64, seed=401,
                memory=True,
            ).result()
            for i in range(len(workload)):
                assert got.get_counts(i) == want.get_counts(i)
                assert got.get_memory(i) == want.get_memory(i)
            assert strict.stats()["programs_validated"] == len(workload)
            assert off.stats()["programs_validated"] == 0
        finally:
            strict.shutdown()
            off.shutdown()


class TestPlannerRoutingMatchesFacts:
    """Regression for the facts dedupe: routing is a pure function of facts."""

    def predicted_kind(self, facts, noise) -> str:
        if max(1, len(facts.touched_qubits)) > MAX_DENSE_QUBITS:
            return batchsim.SERIAL
        if facts.structurally_defective:
            return batchsim.SERIAL
        if facts.is_fast_path(noise):
            return batchsim.IDEAL
        if facts.trajectory_eligible:
            return batchsim.SHOTS
        return batchsim.SERIAL

    def assigned_kinds(self, backend, units) -> dict[int, str]:
        groups = batchsim.plan(backend, units)
        assigned = {}
        for group in groups:
            for unit in group.units:
                assert unit.index not in assigned, "unit planned twice"
                assigned[unit.index] = group.kind
        return assigned

    @pytest.mark.parametrize("seed", [501, 502, 503])
    def test_randomized_routing_agrees(self, seed):
        rng = np.random.default_rng(seed)
        backend = noisy_backend() if seed % 2 else LocalSimulator()
        units = []
        for index in range(12):
            qc = mutate(
                random_circuit(rng, int(rng.integers(1, 4)),
                               int(rng.integers(1, 7))),
                rng,
            )
            if rng.random() < 0.2:
                qc, _ = break_circuit(qc, rng)
            units.append(batchsim.make_unit(index, qc, None, seed + index, 32))
        assigned = self.assigned_kinds(backend, units)
        for unit in units:
            want = self.predicted_kind(unit.facts, backend.noise_model)
            assert assigned[unit.index] == want, (
                f"unit {unit.index}: planner chose {assigned[unit.index]}, "
                f"facts predict {want}"
            )

    def test_over_wide_and_defective_route_serial(self):
        wide = QuantumCircuit(MAX_DENSE_QUBITS + 1, 1)
        for q in range(MAX_DENSE_QUBITS + 1):
            wide.h(q)
        wide.measure(0, 0)
        broken, _ = break_circuit(
            random_circuit(np.random.default_rng(0), 2, 3),
            np.random.default_rng(0),
        )
        backend = Backend(name="wide", num_qubits=MAX_DENSE_QUBITS + 2)
        units = [
            batchsim.make_unit(0, wide, None, 1, 8),
            batchsim.make_unit(1, broken, None, 2, 8),
        ]
        assigned = self.assigned_kinds(backend, units)
        assert assigned == {0: batchsim.SERIAL, 1: batchsim.SERIAL}

    def test_unit_facts_match_fresh_extraction(self):
        rng = np.random.default_rng(601)
        for _ in range(10):
            qc = mutate(random_circuit(rng, 3, 5), rng)
            unit = batchsim.make_unit(0, qc, None, 1, 16)
            assert unit.facts == circuit_facts(qc)


class TestDefectiveBatchParity:
    def test_batch_and_thread_raise_the_same_error(self):
        """A defective unit in a batch workload fails with the serial
        engine's canonical message on every executor strategy."""
        rng = np.random.default_rng(701)
        broken, code = break_circuit(random_circuit(rng, 2, 4), rng)
        messages = {}
        for executor in ("thread", "batch"):
            svc = ExecutionService(executor=executor)
            try:
                with pytest.raises(SimulationError) as excinfo:
                    svc.run(
                        [random_circuit(rng, 2, 3), broken],
                        shots=16,
                        seed=701,
                    ).result()
                messages[executor] = str(excinfo.value)
            finally:
                svc.shutdown()
        assert messages["thread"] == messages["batch"]
        assert f"[{code}]" in messages["thread"]
