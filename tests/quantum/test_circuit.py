"""QuantumCircuit builder: construction, validation, structure queries."""

import pytest

from repro.errors import CircuitError, QuantumDeprecationError
from repro.quantum.circuit import (
    ClassicalRegister,
    Instruction,
    QuantumCircuit,
    QuantumRegister,
)


class TestConstruction:
    def test_int_sizes(self):
        qc = QuantumCircuit(3, 2)
        assert qc.num_qubits == 3
        assert qc.num_clbits == 2

    def test_qubits_only(self):
        qc = QuantumCircuit(4)
        assert qc.num_qubits == 4
        assert qc.num_clbits == 0

    def test_registers(self):
        qr = QuantumRegister(2, "qr")
        cr = ClassicalRegister(2, "cr")
        qc = QuantumCircuit(qr, cr)
        assert qc.num_qubits == 2
        assert qc.num_clbits == 2

    def test_duplicate_register_name_rejected(self):
        qc = QuantumCircuit(QuantumRegister(2, "a"))
        with pytest.raises(CircuitError, match="duplicate"):
            qc.add_register(QuantumRegister(3, "a"))

    def test_bad_register_size(self):
        with pytest.raises(CircuitError):
            QuantumRegister(0, "q")

    def test_bad_register_name(self):
        with pytest.raises(CircuitError):
            QuantumRegister(2, "2q")

    def test_mixed_int_and_register_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2, QuantumRegister(2, "q"))


class TestValidation:
    def test_out_of_range_qubit(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="out of range"):
            qc.h(2)

    def test_negative_qubit(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="out of range"):
            qc.x(-1)

    def test_duplicate_qubits(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="duplicate"):
            qc.cx(0, 0)

    def test_non_integer_qubit(self):
        qc = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="int"):
            qc.h(0.5)

    def test_wrong_arity(self):
        qc = QuantumCircuit(3)
        with pytest.raises(CircuitError, match="acts on"):
            qc.append("cx", [0])

    def test_nonfinite_param(self):
        qc = QuantumCircuit(1)
        with pytest.raises(CircuitError, match="non-finite"):
            qc.rx(float("nan"), 0)

    def test_measure_length_mismatch(self):
        qc = QuantumCircuit(2, 2)
        with pytest.raises(CircuitError, match="maps"):
            qc.measure([0, 1], [0])

    def test_clbit_out_of_range(self):
        qc = QuantumCircuit(2, 1)
        with pytest.raises(CircuitError, match="clbit"):
            qc.measure(0, 1)


class TestBuilderMethods:
    def test_every_gate_method_appends(self):
        qc = QuantumCircuit(3, 3)
        qc.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).tdg(0).sx(0).sxdg(0)
        qc.rx(0.1, 0).ry(0.2, 0).rz(0.3, 0).p(0.4, 0).u(0.1, 0.2, 0.3, 0)
        qc.cx(0, 1).cy(0, 1).cz(0, 1).ch(0, 1).csx(0, 1).swap(0, 1).iswap(0, 1)
        qc.crx(0.1, 0, 1).cry(0.2, 0, 1).crz(0.3, 0, 1).cp(0.4, 0, 1)
        qc.rxx(0.1, 0, 1).ryy(0.2, 0, 1).rzz(0.3, 0, 1)
        qc.ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2)
        assert qc.size() == 33

    def test_mcx(self):
        qc = QuantumCircuit(4)
        qc.mcx([0], 1)
        qc.mcx([0, 1], 2)
        assert [i.name for i in qc] == ["cx", "ccx"]
        with pytest.raises(CircuitError):
            qc.mcx([0, 1, 2], 3)

    def test_measure_all_adds_register(self):
        qc = QuantumCircuit(3)
        qc.measure_all()
        assert qc.num_clbits == 3
        assert qc.count_ops()["measure"] == 3

    def test_barrier_defaults_to_all(self):
        qc = QuantumCircuit(3)
        qc.barrier()
        assert qc.instructions[0].qubits == (0, 1, 2)

    def test_condition(self):
        qc = QuantumCircuit(2, 2)
        qc.append("x", [1], condition=(0, 1))
        assert qc.instructions[0].condition == (0, 1)


class TestStructure:
    def test_compose_identity_mapping(self):
        inner = QuantumCircuit(2)
        inner.h(0)
        inner.cx(0, 1)
        outer = QuantumCircuit(2, 2)
        outer.compose(inner)
        assert [i.name for i in outer] == ["h", "cx"]

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2)
        inner.cx(0, 1)
        outer = QuantumCircuit(3)
        outer.compose(inner, qubits=[2, 0])
        assert outer.instructions[0].qubits == (2, 0)

    def test_compose_wrong_map_size(self):
        inner = QuantumCircuit(2)
        outer = QuantumCircuit(3)
        with pytest.raises(CircuitError):
            outer.compose(inner, qubits=[0])

    def test_inverse_reverses_and_inverts(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.s(1)
        qc.cx(0, 1)
        inv = qc.inverse()
        assert [i.name for i in inv] == ["cx", "sdg", "h"]

    def test_inverse_rejects_measurement(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        with pytest.raises(CircuitError):
            qc.inverse()

    def test_power(self):
        qc = QuantumCircuit(1)
        qc.t(0)
        assert qc.power(3).size() == 3
        assert qc.power(-2).count_ops() == {"tdg": 2}
        assert qc.power(0).size() == 0

    def test_depth(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.h(1)  # parallel with the first
        qc.cx(0, 1)
        qc.x(2)  # parallel with everything above
        assert qc.depth() == 2

    def test_depth_counts_measure_wires(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        assert qc.depth() == 2

    def test_size_excludes_barriers(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.barrier()
        assert qc.size() == 1
        assert len(qc) == 2

    def test_count_ops_sorted(self):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.h(1)
        qc.x(1)
        assert qc.count_ops() == {"h": 1, "x": 2}

    def test_copy_is_independent(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        other = qc.copy()
        other.x(0)
        assert qc.size() == 1
        assert other.size() == 2

    def test_remove_final_measurements(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure([0, 1], [0, 1])
        trimmed = qc.remove_final_measurements()
        assert trimmed.count_ops() == {"h": 1}

    def test_remove_all_measurements_keeps_interior_gates(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        qc.x(0)
        stripped = qc.remove_all_measurements()
        assert [i.name for i in stripped] == ["x"]

    def test_measured_qubit_to_clbit_last_wins(self):
        qc = QuantumCircuit(2, 2)
        qc.measure(0, 0)
        qc.measure(0, 1)
        assert qc.measured_qubit_to_clbit() == {0: 1}

    def test_equality(self):
        a = QuantumCircuit(1)
        a.h(0)
        b = QuantumCircuit(1)
        b.h(0)
        assert a == b
        b.x(0)
        assert a != b


class TestDeprecatedMethods:
    @pytest.mark.parametrize(
        "call",
        [
            lambda qc: qc.u1(0.1, 0),
            lambda qc: qc.u2(0.1, 0.2, 0),
            lambda qc: qc.u3(0.1, 0.2, 0.3, 0),
            lambda qc: qc.cu1(0.1, 0, 1),
            lambda qc: qc.iden(0),
            lambda qc: qc.toffoli(0, 1, 2),
            lambda qc: qc.fredkin(0, 1, 2),
            lambda qc: qc.cnot(0, 1),
            lambda qc: qc.snapshot("label"),
        ],
    )
    def test_removed_methods_raise_with_hint(self, call):
        qc = QuantumCircuit(3, 3)
        with pytest.raises(QuantumDeprecationError, match="Migration"):
            call(qc)


class TestInstruction:
    def test_repr_contains_name_and_qubits(self):
        inst = Instruction("cx", (0, 1))
        assert "cx" in repr(inst) and "[0, 1]" in repr(inst)

    def test_inverse_of_measure_rejected(self):
        inst = Instruction("measure", (0,), (0,))
        with pytest.raises(CircuitError):
            inst.inverse()
