"""Property-based/fuzz harness for the dispatch protocol's lease queue.

Seeded ``random`` only (mirroring ``test_cache_properties.py``): arbitrary
interleavings of lease / heartbeat / complete / fail / clock-advance / add
operations must preserve the queue invariants the distributed eval engine's
determinism rests on —

* **no lost chunk** — every chunk is always in exactly one of
  pending / leased / done, and a drained queue has folded all of them;
* **no duplicate fold** — ``complete`` succeeds exactly once per chunk, no
  matter how many stale leases race it;
* **monotonic lease ids** — every lease ever issued has a strictly larger id
  than the one before.
"""

import random
import socket
import threading

import pytest

from repro.quantum.execution import WorkQueue

SEED = 20260728


def _dead_url() -> str:
    """A URL nothing listens on (bind an ephemeral port, then release it)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


def _rng(tag: str) -> random.Random:
    return random.Random(f"{SEED}:{tag}")


class FakeClock:
    """Deterministic, manually-advanced stand-in for ``time.monotonic``."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_queue(lease_timeout: float = 10.0) -> tuple[WorkQueue, FakeClock]:
    clock = FakeClock()
    return WorkQueue(lease_timeout=lease_timeout, clock=clock), clock


def payload(i: int) -> bytes:
    return f"chunk-{i}".encode()


def assert_partition(queue: WorkQueue) -> None:
    """Every chunk is in exactly one state and none has vanished."""
    status = queue.status()
    assert (
        status["pending"] + status["leased"] + status["done"]
        == status["total"]
    )
    # The internal state list is the ground truth the counters must match.
    states = list(queue._state)
    assert states.count("pending") == status["pending"]
    assert states.count("leased") == status["leased"]
    assert states.count("done") == status["done"]


class TestQueueFuzz:
    @pytest.mark.parametrize("round_tag", ["a", "b", "c", "d"])
    def test_random_op_sequences_preserve_invariants(self, round_tag):
        rng = _rng(f"ops-{round_tag}")
        queue, clock = make_queue(lease_timeout=rng.uniform(1.0, 20.0))
        live_leases: list[int] = []
        retired_leases: list[int] = []
        lease_ids_issued: list[int] = []
        queue.add_chunks([payload(i) for i in range(rng.randint(1, 8))])

        for _ in range(400):
            op = rng.choice(
                ["lease", "complete", "complete_stale", "heartbeat",
                 "fail", "advance", "add", "expire"]
            )
            if op == "lease":
                leased = queue.lease(f"w{rng.randint(0, 3)}")
                if leased is not None:
                    lease_id, index, blob = leased
                    assert blob == payload(index)
                    lease_ids_issued.append(lease_id)
                    live_leases.append(lease_id)
            elif op == "complete" and live_leases:
                lease_id = rng.choice(live_leases)
                if queue.complete(lease_id, b"result"):
                    live_leases.remove(lease_id)
                    retired_leases.append(lease_id)
            elif op == "complete_stale":
                # A lease id that was never issued, or one already retired:
                # folding it must always be rejected.
                stale = rng.choice(retired_leases) if (
                    retired_leases and rng.random() < 0.5
                ) else rng.randint(10_000, 20_000)
                assert queue.complete(stale, b"stale") is False
            elif op == "heartbeat" and live_leases:
                queue.heartbeat(rng.choice(live_leases))
            elif op == "fail" and live_leases:
                lease_id = rng.choice(live_leases)
                if queue.fail(lease_id):
                    live_leases.remove(lease_id)
                    retired_leases.append(lease_id)
            elif op == "advance":
                clock.advance(rng.uniform(0.0, queue.lease_timeout * 1.5))
            elif op == "add":
                start = queue.total
                queue.add_chunks(
                    [payload(start + i) for i in range(rng.randint(1, 3))]
                )
            elif op == "expire":
                queue.expire()
            # Expiry can retire any live lease at any moment; drop the ones
            # the queue no longer recognises (their completes must fail).
            for lease_id in list(live_leases):
                if lease_id not in queue._leases:
                    live_leases.remove(lease_id)
                    retired_leases.append(lease_id)
            assert_partition(queue)
            # Monotonic lease ids across the whole history.
            assert lease_ids_issued == sorted(set(lease_ids_issued))

        # Drain: lease + complete until everything folded exactly once.
        folded_chunks: list[int] = []
        while queue.done < queue.total:
            leased = queue.lease("drainer")
            if leased is None:
                clock.advance(queue.lease_timeout + 1)
                continue
            lease_id, index, _blob = leased
            assert queue.complete(lease_id, payload(index)) is True
            folded_chunks.append(index)
        assert_partition(queue)
        status = queue.status()
        assert status["pending"] == status["leased"] == 0
        assert status["done"] == status["total"]
        # Exactly-once: the drain folded each remaining chunk once, and no
        # chunk appears twice across the whole run.
        assert len(folded_chunks) == len(set(folded_chunks))

    def test_fuzzed_double_complete_never_double_folds(self):
        rng = _rng("double")
        queue, clock = make_queue(lease_timeout=5.0)
        queue.add_chunks([payload(i) for i in range(20)])
        folds = 0
        issued: list[int] = []
        while queue.done < queue.total:
            leased = queue.lease()
            if leased is None:
                clock.advance(6.0)
                continue
            lease_id, _index, _blob = leased
            issued.append(lease_id)
            # Sometimes let the lease expire before completing: the late
            # completion must then be rejected.
            expired = rng.random() < 0.3
            if expired:
                clock.advance(6.0)
            first = queue.complete(lease_id, b"r")
            assert first is (not expired)
            folds += int(first)
            # Every retry of an already-settled lease is rejected.
            for _ in range(rng.randint(1, 3)):
                assert queue.complete(lease_id, b"again") is False
        assert folds == queue.total == queue.done
        assert issued == sorted(set(issued))


class TestQueueEdges:
    def test_heartbeat_extends_lease(self):
        queue, clock = make_queue(lease_timeout=10.0)
        queue.add_chunks([payload(0)])
        lease_id, _, _ = queue.lease("w")
        clock.advance(8.0)
        assert queue.heartbeat(lease_id) is True
        clock.advance(8.0)  # would be past the original deadline
        assert queue.expire() == 0
        assert queue.complete(lease_id, b"r") is True

    def test_expired_lease_requeues_exactly_once(self):
        queue, clock = make_queue(lease_timeout=1.0)
        queue.add_chunks([payload(0)])
        lease_id, index, _ = queue.lease("w")
        clock.advance(2.0)
        assert queue.expire() == 1
        assert queue.expire() == 0  # idempotent: one expiry, one requeue
        assert queue.requeues == {index: 1}
        assert queue.heartbeat(lease_id) is False
        assert queue.complete(lease_id, b"late") is False
        release = queue.lease("w2")
        assert release is not None and release[0] > lease_id
        assert queue.complete(release[0], b"r") is True
        assert queue.status()["done"] == 1

    def test_fail_requeues_and_is_stale_safe(self):
        queue, _clock = make_queue()
        queue.add_chunks([payload(0)])
        lease_id, index, _ = queue.lease()
        assert queue.fail(lease_id) is True
        assert queue.fail(lease_id) is False  # already requeued
        assert queue.requeues == {index: 1}
        assert queue.status()["pending"] == 1

    def test_lease_on_empty_queue(self):
        queue, _clock = make_queue()
        assert queue.lease() is None
        assert queue.next_result(timeout=0.01) is None

    def test_rejects_nonpositive_lease_timeout(self):
        with pytest.raises(ValueError, match="lease_timeout"):
            WorkQueue(lease_timeout=0)

    def test_next_result_wakes_on_complete(self):
        queue, _clock = make_queue()
        queue.add_chunks([payload(0)])
        lease_id, index, _ = queue.lease()
        got = []

        def wait():
            got.append(queue.next_result(timeout=5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        queue.complete(lease_id, b"r")
        thread.join(timeout=5)
        assert got == [(index, b"r")]

    def test_repr_and_status_agree(self):
        queue, _clock = make_queue()
        queue.add_chunks([payload(0), payload(1)])
        queue.lease()
        text = repr(queue)
        assert "total=2" in text and "leased=1" in text and "pending=1" in text


class TestTransportHardening:
    """The HTTP layer and worker client against dead servers and bad input."""

    def test_client_rejects_non_http_url(self):
        from repro.quantum.execution import DispatchClient

        with pytest.raises(ValueError, match="http"):
            DispatchClient("ftp://coordinator")

    def test_dead_coordinator_degrades_to_retryable_nothing(self):
        """Transport errors return None/False (the worker loop retries);
        only auth errors raise."""
        from repro.quantum.execution import DispatchClient

        client = DispatchClient(_dead_url(), timeout=0.5)
        assert client.lease("w") is None
        # Heartbeat distinguishes "request lost" (None — keep beating) from
        # an explicit "lease gone" (False): see _heartbeat_loop.
        assert client.heartbeat(1, "w") is None
        assert client.complete(1, b"r", "w") is False
        assert client.status() is None
        assert client.errors == 4
        assert "errors=4" in repr(client)

    def test_work_status_endpoint(self, tmp_path):
        from repro.quantum.execution import DispatchClient, EvalCoordinator
        from repro.quantum.execution.dispatch import encode_chunk

        with EvalCoordinator(tmp_path, fallback_workers=0) as coordinator:
            coordinator.queue.add_chunks([encode_chunk(_echo, (1,))])
            client = DispatchClient(coordinator.url)
            status = client.status()
            assert status == {
                "total": 1, "pending": 1, "leased": 0, "done": 0,
                "requeues": 0, "workers": 0, "lanes": {"": 1},
            }

    def test_malformed_work_requests_are_400(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        from repro.quantum.execution import EvalCoordinator

        with EvalCoordinator(tmp_path, fallback_workers=0) as coordinator:
            bad_bodies = [
                b"{ not json",
                b"[1, 2, 3]",  # json but not an object
                json.dumps({"worker": "w"}).encode(),  # heartbeat sans lease
            ]
            paths = ["/work/heartbeat", "/work/heartbeat", "/work/heartbeat"]
            for path, body in zip(paths, bad_bodies):
                request = urllib.request.Request(
                    f"{coordinator.url}{path}", data=body, method="POST"
                )
                with pytest.raises(urllib.error.HTTPError) as info:
                    urllib.request.urlopen(request, timeout=2)
                assert info.value.code == 400, body

    def test_unknown_post_path_is_404(self, tmp_path):
        import urllib.error
        import urllib.request

        from repro.quantum.execution import EvalCoordinator

        with EvalCoordinator(tmp_path, fallback_workers=0) as coordinator:
            request = urllib.request.Request(
                f"{coordinator.url}/work/nope", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=2)
            assert info.value.code == 404

    def test_cache_routes_still_served_by_coordinator(self, tmp_path):
        """The coordinator is a full cache server too — one port, one token."""
        from repro.quantum.execution import (
            CacheKey,
            EvalCoordinator,
            RemoteResultCache,
        )

        key = CacheKey(
            circuit="ab" * 8, backend="b", shots=8, seed=1,
            noise="ideal", memory=False,
        )
        with EvalCoordinator(tmp_path, fallback_workers=0) as coordinator:
            client = RemoteResultCache(coordinator.url)
            client.put(key, {"0": 8}, None)
            assert client.get(key) == ({"0": 8}, None)
            assert client.stats()["entries"] == 1

    def test_tokenless_coordinator_refuses_non_loopback_bind(self, tmp_path):
        """Leased chunks execute as code: an open work queue may only face
        this machine.  (Loopback without a token stays fine — tests and
        single-host runs — as does any bind with a token.)"""
        from repro.errors import BackendError
        from repro.quantum.execution import EvalCoordinator

        with pytest.raises(BackendError, match="non-loopback"):
            EvalCoordinator(tmp_path, host="0.0.0.0")
        with pytest.raises(BackendError, match="non-loopback"):
            EvalCoordinator(tmp_path, host="")  # "" binds INADDR_ANY too
        with EvalCoordinator(tmp_path, host="127.0.0.1") as coordinator:
            assert coordinator.queue.status()["total"] == 0

    def test_non_ascii_auth_header_is_401_not_a_crash(self, tmp_path):
        """Regression: compare_digest on str raises for non-ASCII input;
        the handler must answer 401, not dump a traceback and drop the
        connection."""
        import urllib.error
        import urllib.request

        from repro.quantum.execution import EvalCoordinator

        with EvalCoordinator(tmp_path, token="fleet-secret") as coordinator:
            request = urllib.request.Request(f"{coordinator.url}/work/status")
            request.add_header("Authorization", "Bearer café")
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=2)
            assert info.value.code == 401

    def test_run_worker_validates_workers(self):
        from repro.quantum.execution import run_worker

        with pytest.raises(ValueError, match="workers"):
            run_worker("http://x:1", workers=0)

    def test_worker_max_idle_exits_without_a_queue(self, tmp_path):
        from repro.quantum.execution import EvalCoordinator, run_worker

        with EvalCoordinator(tmp_path, fallback_workers=0) as coordinator:
            completed = run_worker(
                coordinator.url, workers=2, poll_interval=0.02, max_idle=0.2
            )
            assert completed == 0

    def test_fallback_chunk_outliving_lease_timeout_is_not_requeued(
        self, tmp_path
    ):
        """Regression: the local fallback heartbeats its lease, so a chunk
        slower than lease_timeout completes instead of being requeued and
        re-executed forever."""
        from repro.quantum.execution import EvalCoordinator
        from repro.quantum.execution.dispatch import encode_chunk

        with EvalCoordinator(
            tmp_path, fallback_workers=1, fallback_grace=0.01,
            lease_timeout=0.3,
        ) as coordinator:
            results = coordinator.run_chunks([encode_chunk(_slow_echo, (7,))])
            assert results == [7]
            assert coordinator.queue.requeues == {}

    def test_worker_chunk_outliving_lease_timeout_is_not_requeued(
        self, tmp_path
    ):
        """Regression: the worker paces heartbeats under the coordinator's
        advertised lease timeout, so a small --lease-timeout does not expire
        every lease before the first (default-interval) beat."""
        from repro.quantum.execution import EvalCoordinator, run_worker
        from repro.quantum.execution.dispatch import encode_chunk

        with EvalCoordinator(
            tmp_path, fallback_workers=0, lease_timeout=0.4
        ) as coordinator:
            coordinator.queue.add_chunks([encode_chunk(_slow_echo, (9,))])
            completed = run_worker(
                coordinator.url, workers=1, poll_interval=0.02,
                max_idle=0.5,  # default heartbeat_interval (5s) stays in play
            )
            assert completed == 1
            assert coordinator.queue.requeues == {}
            assert coordinator.queue.status()["done"] == 1

    def test_fallback_grace_is_honoured_before_any_worker_attaches(
        self, tmp_path
    ):
        """Regression: with no worker ever seen, the grace window counts
        from the start of the run — the coordinator must not start draining
        the queue locally ~instantly, or an attaching fleet would always
        find it empty."""
        import time

        from repro.quantum.execution import DispatchClient, EvalCoordinator
        from repro.quantum.execution.dispatch import (
            encode_chunk,
            run_chunk_payload,
        )

        with EvalCoordinator(
            tmp_path, fallback_workers=2, fallback_grace=30.0,
            lease_timeout=10.0,
        ) as coordinator:
            box = {}

            def run():
                box["results"] = coordinator.run_chunks(
                    [encode_chunk(_echo, (i,)) for i in range(3)]
                )

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            time.sleep(0.4)
            # Well past the old instant-start behaviour, nothing ran.
            assert coordinator.queue.status()["done"] == 0
            # A worker that attaches within the grace gets all the work.
            client = DispatchClient(coordinator.url)
            served = 0
            while served < 3:
                document = client.lease("fleet")
                if document is None or document.get("empty"):
                    time.sleep(0.02)
                    continue
                import base64

                outcome = run_chunk_payload(
                    base64.b64decode(document["payload"])
                )
                client.complete(int(document["lease"]), outcome, "fleet")
                served += 1
            thread.join(timeout=10)
            assert box["results"] == [0, 1, 2]

    def test_aborted_run_retires_its_chunks(self, tmp_path):
        """Regression: a run that re-raises a chunk error must not leave its
        unfinished chunks pending (the next run's workers would execute them
        for nothing) nor retain their payloads."""
        import base64
        import time

        from repro.quantum.execution import DispatchClient, EvalCoordinator
        from repro.quantum.execution.dispatch import (
            encode_chunk,
            run_chunk_payload,
        )

        with EvalCoordinator(
            tmp_path, fallback_workers=0, lease_timeout=10.0
        ) as coordinator:
            box = {}

            def run():
                try:
                    coordinator.run_chunks(
                        [encode_chunk(_boom, ()), encode_chunk(_echo, (5,))]
                    )
                except RuntimeError as exc:
                    box["error"] = exc

            thread = threading.Thread(target=run, daemon=True)
            thread.start()
            client = DispatchClient(coordinator.url)
            # Serve only the first (exploding) chunk; its fold aborts the run.
            while True:
                document = client.lease("fleet")
                if document is not None and not document.get("empty"):
                    break
                time.sleep(0.02)
            outcome = run_chunk_payload(base64.b64decode(document["payload"]))
            client.complete(int(document["lease"]), outcome, "fleet")
            thread.join(timeout=10)
            assert isinstance(box.get("error"), RuntimeError)
            # The never-run second chunk was retired, not left pending.
            status = coordinator.queue.status()
            assert status["pending"] == 0 and status["leased"] == 0
            assert status["done"] == status["total"] == 2
            assert client.lease("fleet").get("empty") is True
            # Payloads were released (a long-lived coordinator stays lean).
            assert all(p == b"" for p in coordinator.queue._payloads)

    def test_concurrent_run_chunks_each_get_their_own_results(
        self, tmp_path
    ):
        """Regression: two overlapping run_chunks calls used to steal each
        other's completions from the shared result stream and hang; each
        folding loop now consumes only its own chunks' completions
        (next_result(within=...)), so concurrent runs — two tenants
        sharing one coordinator — interleave safely."""
        from repro.quantum.execution import EvalCoordinator
        from repro.quantum.execution.dispatch import encode_chunk

        with EvalCoordinator(
            tmp_path, fallback_workers=1, fallback_grace=0.01,
            lease_timeout=5.0,
        ) as coordinator:
            results = [None, None]

            def run(slot, values):
                results[slot] = coordinator.run_chunks(
                    [encode_chunk(_echo, (v,)) for v in values]
                )

            threads = [
                threading.Thread(target=run, args=(0, [1, 2]), daemon=True),
                threading.Thread(target=run, args=(1, [3, 4]), daemon=True),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert results == [[1, 2], [3, 4]]

    def test_auth_rejection_on_complete_crashes_worker_loudly(
        self, tmp_path, monkeypatch
    ):
        """Regression: credentials revoked *mid-run* (the completion upload
        gets the 401, not the lease) must still crash run_worker, not kill
        one thread silently and report success."""
        from repro.errors import BackendError
        from repro.quantum.execution import EvalCoordinator, run_worker
        from repro.quantum.execution import dispatch as dispatch_mod

        with EvalCoordinator(
            tmp_path, fallback_workers=0, lease_timeout=5.0
        ) as coordinator:
            coordinator.queue.add_chunks(
                [dispatch_mod.encode_chunk(_echo, (1,))]
            )

            def revoked(self, lease_id, result, worker=""):
                raise BackendError("credentials revoked mid-run")

            monkeypatch.setattr(
                dispatch_mod.DispatchClient, "complete", revoked
            )
            with pytest.raises(BackendError, match="revoked"):
                run_worker(
                    coordinator.url, workers=1, poll_interval=0.02,
                    max_idle=5,
                )

    def test_run_chunks_skips_stragglers_from_an_aborted_run(self, tmp_path):
        """Regression: a completion belonging to an earlier run on the same
        coordinator must be dropped by the folding loop, not crash it."""
        from repro.quantum.execution import EvalCoordinator
        from repro.quantum.execution.dispatch import encode_chunk

        with EvalCoordinator(
            tmp_path, fallback_workers=1, fallback_grace=0.01,
            lease_timeout=5.0,
        ) as coordinator:
            queue = coordinator.queue
            # Simulate an aborted earlier run: its chunk completes after the
            # run stopped folding, leaving a stray entry in the result queue.
            queue.add_chunks([b"stale-payload"])
            lease_id, _index, _ = queue.lease("earlier-run")
            queue.complete(lease_id, ("ok", "stale"))
            results = coordinator.run_chunks(
                [encode_chunk(_echo, (1,)), encode_chunk(_echo, (2,))]
            )
            assert results == [1, 2]


def _echo(x):
    return x


def _slow_echo(x):
    import time

    time.sleep(1.0)
    return x


def _boom():
    raise RuntimeError("chunk exploded")
