"""Unit coverage for the static circuit analysis subsystem.

Facts extraction (one walk, no matrices), coded diagnostics, the cheap
``structural_errors`` subset, and the execution service's pre-flight
(``validate="off"|"warn"|"strict"``).
"""

import warnings

import numpy as np
import pytest

from repro.errors import (
    BackendError,
    SimulationError,
    TranspilerError,
    ValidationError,
)
from repro.quantum.analysis import (
    DIAGNOSTIC_CODES,
    ERROR,
    INFO,
    WARNING,
    CircuitAnalysis,
    Diagnostic,
    analyze_circuit,
    circuit_facts,
    structural_errors,
    structure_fingerprint,
)
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.execution import (
    VALIDATE_MODES,
    ExecutionService,
    stats_scope,
    validate_from_env,
)
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import simulate_counts
from repro.quantum.transpiler import transpile


def bell() -> QuantumCircuit:
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    return qc


def bad_qubit_circuit() -> QuantumCircuit:
    """QA101: a gate referencing qubit 5 of a 2-qubit circuit (builder
    bypassed — the public API refuses to construct this)."""
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc._instructions.append(Instruction("x", (5,)))
    return qc


def dangling_conditional_circuit() -> QuantumCircuit:
    """QA102: a conditional on a clbit no measurement ever writes."""
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.append("x", [1], condition=(0, 1))
    return qc


def bad_clbit_circuit() -> QuantumCircuit:
    """QA103: a measurement into clbit 7 of a 2-clbit circuit."""
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc._instructions.append(Instruction("measure", (0,), (7,)))
    return qc


def unknown_gate_circuit() -> QuantumCircuit:
    """QA104: an instruction whose gate has no registered matrix."""
    qc = QuantumCircuit(1, 1)
    qc._instructions.append(Instruction("bogus", (0,)))
    qc.measure(0, 0)
    return qc


# ---------------------------------------------------------------------------
# CircuitFacts


class TestCircuitFacts:
    def test_mirrors_circuit_accessors(self):
        qc = bell()
        facts = circuit_facts(qc)
        assert facts.num_qubits == qc.num_qubits
        assert facts.num_clbits == qc.num_clbits
        assert facts.num_instructions == len(qc)
        assert facts.size == qc.size()
        assert facts.depth == qc.depth()
        assert facts.gate_counts == {"h": 1, "cx": 1, "measure": 2}

    def test_depth_matches_on_wire_structures(self):
        qc = QuantumCircuit(3, 3)
        qc.h(0)
        qc.cx(0, 1)
        qc.barrier()
        qc.measure(0, 0)
        qc.append("x", [2], condition=(0, 1))
        qc.measure([1, 2], [1, 2])
        assert circuit_facts(qc).depth == qc.depth()

    def test_dataflow_sets(self):
        qc = QuantumCircuit(4, 3)
        qc.h(0)
        qc.measure(0, 1)
        qc.append("x", [1], condition=(1, 1))
        facts = circuit_facts(qc)
        assert facts.touched_qubits == {0, 1}
        assert facts.measured_qubits == {0}
        assert facts.written_clbits == {1}
        assert facts.read_clbits == {1}
        assert facts.unused_qubits == (2, 3)
        assert facts.num_conditionals == 1
        assert not facts.structurally_defective

    def test_empty_circuit(self):
        facts = circuit_facts(QuantumCircuit(3))
        assert facts.depth == 0 and facts.size == 0
        assert facts.unused_qubits == (0, 1, 2)
        assert facts.trajectory_eligible
        assert not facts.has_measurements

    def test_gates_after_measure_recorded(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.x(0)
        facts = circuit_facts(qc)
        assert facts.gates_after_measure == ((2, 0),)
        assert not facts.is_fast_path(None)

    def test_fast_path_and_trajectory_eligibility(self):
        facts = circuit_facts(bell())
        assert facts.is_fast_path(None)
        assert facts.is_fast_path(NoiseModel())  # trivial noise
        noisy = NoiseModel.uniform_depolarizing(
            p_1q=1e-3, p_2q=1e-2, p_readout=1e-2
        )
        assert not facts.is_fast_path(noisy)
        assert facts.trajectory_eligible
        assert not circuit_facts(
            dangling_conditional_circuit()
        ).trajectory_eligible

    def test_reset_disqualifies_fast_path(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        qc.measure(0, 0)
        facts = circuit_facts(qc)
        assert facts.has_reset and not facts.is_fast_path(None)
        assert facts.trajectory_eligible  # resets don't block trajectories

    def test_defect_records(self):
        assert circuit_facts(bad_qubit_circuit()).bad_qubit_refs == ((1, 5),)
        assert circuit_facts(bad_clbit_circuit()).bad_clbit_writes == ((1, 7),)
        reads = circuit_facts(dangling_conditional_circuit()).conditional_reads
        assert len(reads) == 1
        read = reads[0]
        assert (read.index, read.clbit, read.value) == (1, 0, 1)
        assert not read.written_before
        for builder in (
            bad_qubit_circuit, dangling_conditional_circuit, bad_clbit_circuit
        ):
            assert circuit_facts(builder()).structurally_defective

    def test_conditional_after_write_is_not_dangling(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.append("x", [1], condition=(0, 1))
        facts = circuit_facts(qc)
        assert facts.conditional_reads[0].written_before
        assert facts.never_written_reads == ()
        assert not facts.structurally_defective

    def test_fingerprint_opt_in(self):
        qc = bell()
        assert circuit_facts(qc).structure_fingerprint is None
        fact_fp = circuit_facts(qc, fingerprint=True).structure_fingerprint
        assert fact_fp == structure_fingerprint(qc)

    def test_fingerprint_parameter_invariant_structure_sensitive(self):
        def rotated(angle):
            qc = QuantumCircuit(1, 1)
            qc.rx(angle, 0)
            qc.measure(0, 0)
            return qc

        assert structure_fingerprint(rotated(0.1)) == structure_fingerprint(
            rotated(2.9)
        )
        other = QuantumCircuit(1, 1)
        other.h(0)
        other.measure(0, 0)
        assert structure_fingerprint(other) != structure_fingerprint(
            rotated(0.1)
        )


# ---------------------------------------------------------------------------
# Diagnostics


class TestDiagnostics:
    def test_code_table_banding(self):
        for code, (severity, description) in DIAGNOSTIC_CODES.items():
            assert severity == {"1": ERROR, "2": WARNING, "3": INFO}[code[2]]
            assert description
        assert set(DIAGNOSTIC_CODES) == {
            "QA101", "QA102", "QA103", "QA104", "QA105",
            "QA201", "QA202", "QA203", "QA204", "QA301",
        }

    def test_render_eq_hash(self):
        d = Diagnostic("QA101", 3, "qubit 5 out of range")
        assert d.render() == "QA101 error      @3  qubit 5 out of range"
        assert d.is_error
        assert d == Diagnostic("QA101", 3, "qubit 5 out of range")
        assert d != Diagnostic("QA101", 4, "qubit 5 out of range")
        assert len({d, Diagnostic("QA101", 3, "qubit 5 out of range")}) == 1
        assert "QA101" in repr(d)
        assert Diagnostic("QA301", None, "stats").render().startswith(
            "QA301 info       @-"
        )

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            Diagnostic("QA999", None, "nope")

    def test_structural_errors_per_code(self):
        assert [
            d.code for d in structural_errors(circuit_facts(bad_qubit_circuit()))
        ] == ["QA101"]
        assert [
            d.code
            for d in structural_errors(
                circuit_facts(dangling_conditional_circuit())
            )
        ] == ["QA102"]
        assert [
            d.code for d in structural_errors(circuit_facts(bad_clbit_circuit()))
        ] == ["QA103"]
        assert structural_errors(circuit_facts(bell())) == []

    def test_out_of_range_conditional_is_qa102(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        qc.append("x", [0], condition=(9, 1))
        found = structural_errors(circuit_facts(qc))
        assert [d.code for d in found] == ["QA102"]
        assert "out of range" in found[0].message


class TestAnalyzeCircuit:
    def codes(self, circuit, **kwargs):
        return [d.code for d in analyze_circuit(circuit, **kwargs).diagnostics]

    def test_clean_circuit_is_ok_with_stats(self):
        analysis = analyze_circuit(bell())
        assert analysis.ok
        assert self.codes(bell()) == ["QA301"]
        stats = analysis.diagnostics[-1]
        assert "width 2q/2c" in stats.message
        assert analysis.facts.structure_fingerprint in stats.message

    @pytest.mark.parametrize(
        "builder,code",
        [
            (bad_qubit_circuit, "QA101"),
            (dangling_conditional_circuit, "QA102"),
            (bad_clbit_circuit, "QA103"),
            (unknown_gate_circuit, "QA104"),
        ],
    )
    def test_each_error_detector(self, builder, code):
        analysis = analyze_circuit(builder())
        assert not analysis.ok
        assert code in [d.code for d in analysis.errors]

    def test_non_unitary_custom_gate_is_qa104(self, monkeypatch):
        from repro.quantum import gates

        spec = gates.GateSpec(
            "lossy", 1, 0, lambda: [[0.5, 0.0], [0.0, 0.5]]
        )
        monkeypatch.setitem(gates.GATE_SPECS, "lossy", spec)
        qc = QuantumCircuit(1, 1)
        qc.append("lossy", [0])
        qc.measure(0, 0)
        assert "QA104" in self.codes(qc)

    def test_unused_qubits_aggregated_and_capped(self):
        qc = QuantumCircuit(12, 1)
        qc.h(0)
        qc.measure(0, 0)
        warns = analyze_circuit(qc).warnings
        assert [d.code for d in warns] == ["QA201"]
        assert "11 declared qubit(s) never used" in warns[0].message
        assert "(+3 more)" in warns[0].message  # 11 unused, 8 listed

    def test_gate_after_measure_warning(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        qc.x(0)
        assert "QA202" in self.codes(qc)

    def test_unreachable_conditional_warning(self):
        qc = QuantumCircuit(2, 2)
        qc.append("x", [0], condition=(0, 1))  # reads 0, written later
        qc.h(0)
        qc.measure(0, 0)
        qc.measure(1, 1)
        assert "QA203" in self.codes(qc)

    def test_conditional_on_zero_before_write_not_flagged(self):
        # Testing for 0 before any write is well-defined (bit starts at 0).
        qc = QuantumCircuit(2, 2)
        qc.append("x", [0], condition=(0, 0))
        qc.measure([0, 1], [0, 1])
        assert "QA203" not in self.codes(qc)

    def test_over_wide_warning_only_with_cap(self):
        qc = QuantumCircuit(3, 3)
        for q in range(3):
            qc.h(q)
        qc.measure([0, 1, 2], [0, 1, 2])
        assert "QA204" not in self.codes(qc)
        assert "QA204" in self.codes(qc, max_qubits=2)
        assert "QA204" not in self.codes(qc, max_qubits=3)

    def test_supplied_facts_are_reused(self):
        qc = bell()
        facts = circuit_facts(qc, fingerprint=True)
        analysis = analyze_circuit(qc, facts=facts)
        assert analysis.facts is facts

    def test_analysis_views(self):
        analysis = analyze_circuit(bad_qubit_circuit())
        assert isinstance(analysis, CircuitAnalysis)
        assert analysis.errors and not analysis.ok
        assert all(d.severity == ERROR for d in analysis.errors)
        assert all(d.severity == WARNING for d in analysis.warnings)


# ---------------------------------------------------------------------------
# Engine agreement: the analyzer's QA1xx is exactly what the engines refuse


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "builder",
        [bad_qubit_circuit, dangling_conditional_circuit, bad_clbit_circuit],
    )
    def test_simulator_refuses_structural_errors(self, builder):
        rng = np.random.default_rng(1)
        with pytest.raises(SimulationError, match=r"\[QA10[123]\]"):
            simulate_counts(builder(), shots=16, rng=rng)

    @pytest.mark.parametrize(
        "builder",
        [bad_qubit_circuit, dangling_conditional_circuit, bad_clbit_circuit],
    )
    def test_transpiler_refuses_structural_errors(self, builder):
        with pytest.raises(TranspilerError, match=r"\[QA10[123]\]"):
            transpile(builder())


# ---------------------------------------------------------------------------
# Service pre-flight


class TestServicePreflight:
    def test_validate_mode_checked(self):
        with pytest.raises(BackendError, match="validate"):
            ExecutionService(validate="paranoid")
        for mode in VALIDATE_MODES:
            service = ExecutionService(validate=mode)
            assert service.stats()["validate"] == mode
            service.shutdown()

    def test_off_mode_counts_nothing(self):
        # With validation off the defect reaches the simulator, which
        # raises its own (analyzer-agreeing) error; no pre-flight counters.
        service = ExecutionService(validate="off")
        try:
            with pytest.raises(SimulationError, match=r"\[QA102\]"):
                service.run(dangling_conditional_circuit(), shots=16, seed=1)
            stats = service.stats()
            assert stats["programs_validated"] == 0
            assert stats["rejected_static"] == 0
        finally:
            service.shutdown()

    def test_strict_rejects_before_any_simulation(self):
        service = ExecutionService(validate="strict")
        try:
            with stats_scope() as scope:
                with pytest.raises(ValidationError) as excinfo:
                    service.run(dangling_conditional_circuit(), shots=16, seed=1)
            assert "QA102" in str(excinfo.value)
            assert [d.code for d in excinfo.value.diagnostics] == ["QA102"]
            scoped = scope.as_dict()
            assert scoped["programs_validated"] == 1
            assert scoped["rejected_static"] == 1
            assert scoped["simulations"] == 0
            stats = service.stats()
            assert stats["rejected_static"] == 1
            assert stats["simulations"] == 0
        finally:
            service.shutdown()

    def test_strict_passes_clean_circuits(self):
        service = ExecutionService(validate="strict")
        try:
            counts = service.run(bell(), shots=64, seed=7).result().get_counts()
            assert sum(counts.values()) == 64
            stats = service.stats()
            assert stats["programs_validated"] == 1
            assert stats["rejected_static"] == 0
        finally:
            service.shutdown()

    def test_strict_mixed_batch_counts_defective_only(self):
        service = ExecutionService(validate="strict")
        try:
            with pytest.raises(ValidationError, match="1 of 3"):
                service.run(
                    [bell(), dangling_conditional_circuit(), bell()],
                    shots=16,
                    seed=1,
                )
            stats = service.stats()
            assert stats["programs_validated"] == 3
            assert stats["rejected_static"] == 1
            assert stats["simulations"] == 0
        finally:
            service.shutdown()

    def test_warn_mode_warns_and_proceeds(self):
        service = ExecutionService(validate="warn")
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                with pytest.raises(SimulationError, match=r"\[QA102\]"):
                    service.run(
                        dangling_conditional_circuit(), shots=16, seed=1
                    )
            assert any("QA102" in str(w.message) for w in caught)
            stats = service.stats()
            assert stats["programs_validated"] == 1
            assert stats["rejected_static"] == 0
        finally:
            service.shutdown()

    def test_warn_mode_silent_on_clean(self):
        service = ExecutionService(validate="warn")
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                service.run(bell(), shots=16, seed=1)
            assert caught == []
        finally:
            service.shutdown()

    def test_validate_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validate_from_env() == "off"
        assert validate_from_env(default="warn") == "warn"
        monkeypatch.setenv("REPRO_VALIDATE", "STRICT")
        assert validate_from_env() == "strict"
        monkeypatch.setenv("REPRO_VALIDATE", "  ")
        assert validate_from_env() == "off"

    def test_validation_error_is_importable_from_errors(self):
        from repro import errors

        assert issubclass(ValidationError, errors.QuantumError)
        plain = ValidationError("boom")
        assert plain.diagnostics == ()
