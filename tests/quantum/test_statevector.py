"""Statevector semantics: evolution, probabilities, comparisons."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.stats import unitary_group

from repro.errors import SimulationError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import (
    Statevector,
    apply_matrix,
    collapse,
    measure_probabilities,
)


class TestConstruction:
    def test_zero_state(self):
        sv = Statevector.zero_state(3)
        assert sv.probabilities_dict() == {"000": 1.0}

    def test_from_label_basis(self):
        assert Statevector.from_label("10").probabilities_dict() == {"10": 1.0}

    def test_from_label_plus(self):
        probs = Statevector.from_label("+").probabilities_dict()
        assert probs["0"] == pytest.approx(0.5)
        assert probs["1"] == pytest.approx(0.5)

    def test_from_label_imaginary(self):
        sv = Statevector.from_label("r")
        assert sv.data[1] == pytest.approx(1j / math.sqrt(2))

    def test_bad_label(self):
        with pytest.raises(SimulationError):
            Statevector.from_label("02")

    def test_normalisation(self):
        sv = Statevector([2.0, 0.0])
        assert np.linalg.norm(sv.data) == pytest.approx(1.0)

    def test_zero_vector_rejected(self):
        with pytest.raises(SimulationError):
            Statevector([0.0, 0.0])

    def test_non_power_of_two_rejected(self):
        with pytest.raises(SimulationError):
            Statevector([1.0, 0.0, 0.0])


class TestEvolution:
    def test_bell(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        sv = Statevector.from_circuit(qc)
        assert sv.probabilities_dict() == pytest.approx({"00": 0.5, "11": 0.5})

    def test_x_flips_correct_bit(self):
        qc = QuantumCircuit(3)
        qc.x(1)
        sv = Statevector.from_circuit(qc)
        assert sv.probabilities_dict() == {"010": 1.0}

    def test_from_circuit_ignores_trailing_measurement(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        sv = Statevector.from_circuit(qc)
        assert len(sv.probabilities_dict()) == 2

    def test_from_circuit_rejects_midcircuit_measure(self):
        qc = QuantumCircuit(1, 1)
        qc.measure(0, 0)
        qc.h(0)
        with pytest.raises(SimulationError, match="mid-circuit"):
            Statevector.from_circuit(qc)

    def test_evolve_size_mismatch(self):
        qc = QuantumCircuit(3)
        with pytest.raises(SimulationError):
            Statevector.zero_state(2).evolve(qc)

    def test_global_phase_equiv(self):
        qc1 = QuantumCircuit(1)
        qc1.z(0)
        qc1.x(0)
        qc2 = QuantumCircuit(1)
        qc2.x(0)
        qc2.z(0)  # differs by global phase -1 relative to qc1 on |0>? no:
        a = Statevector.from_circuit(qc1)
        b = Statevector.from_circuit(qc2)
        assert a.equiv(b)


class TestApplyMatrix:
    @given(data=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_single_qubit_matches_kron(self, data):
        rng = np.random.default_rng(data)
        n = 3
        target = int(rng.integers(n))
        u = unitary_group.rvs(2, random_state=rng)
        state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
        state /= np.linalg.norm(state)
        got = apply_matrix(state, u, [target], n)
        ops = [np.eye(2)] * n
        ops[target] = u
        full = ops[n - 1]
        for k in range(n - 2, -1, -1):
            full = np.kron(full, ops[k])
        assert np.allclose(got, full @ state, atol=1e-9)

    def test_two_qubit_ordering(self):
        # CX with control qubit 0, target qubit 2 of a 3-qubit register.
        from repro.quantum.gates import CX_MATRIX

        state = np.zeros(8, dtype=complex)
        state[1] = 1.0  # |001> : qubit 0 set
        got = apply_matrix(state, CX_MATRIX, [0, 2], 3)
        expected = np.zeros(8, dtype=complex)
        expected[5] = 1.0  # qubit 2 flips -> |101>
        assert np.allclose(got, expected)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            apply_matrix(np.ones(4) / 2, np.eye(2), [0, 1], 2)


class TestMeasurementHelpers:
    def test_measure_probabilities(self):
        sv = Statevector.from_label("+0")
        state = sv.data
        assert measure_probabilities(state, 0, 2) == pytest.approx(0.0)
        assert measure_probabilities(state, 1, 2) == pytest.approx(0.5)

    def test_collapse(self):
        state = Statevector.from_label("+").data
        collapsed = collapse(state, 0, 1, 1)
        assert abs(collapsed[1]) == pytest.approx(1.0)

    def test_collapse_zero_probability(self):
        state = Statevector.from_label("0").data
        with pytest.raises(SimulationError):
            collapse(state, 0, 1, 1)


class TestStatistics:
    def test_marginal_probabilities(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.x(1)
        sv = Statevector.from_circuit(qc)
        marginal = sv.probabilities([1])
        assert marginal == pytest.approx([0.0, 1.0])

    def test_sample_counts_deterministic(self, rng):
        sv = Statevector.from_label("+")
        counts = sv.sample_counts(1000, np.random.default_rng(5))
        again = sv.sample_counts(1000, np.random.default_rng(5))
        assert counts == again
        assert 400 < counts["0"] < 600

    def test_expectation_values_bell(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        sv = Statevector.from_circuit(qc)
        assert sv.expectation_value("ZZ") == pytest.approx(1.0)
        assert sv.expectation_value("XX") == pytest.approx(1.0)
        assert sv.expectation_value("YY") == pytest.approx(-1.0)
        assert sv.expectation_value("ZI") == pytest.approx(0.0)

    def test_expectation_wrong_length(self):
        sv = Statevector.zero_state(2)
        with pytest.raises(SimulationError):
            sv.expectation_value("Z")

    def test_fidelity_and_inner(self):
        a = Statevector.from_label("0")
        b = Statevector.from_label("+")
        assert a.fidelity(b) == pytest.approx(0.5)
        assert a.inner(a) == pytest.approx(1.0)

    def test_global_phase_aligned(self):
        sv = Statevector(np.array([1j, 0.0]))
        aligned = sv.global_phase_aligned()
        assert aligned.data[0] == pytest.approx(1.0)
