"""The HTTP cache tier: server protocol, client hardening, service wiring."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.quantum.execution import (
    CacheKey,
    CacheLimits,
    CacheServer,
    DiskResultCache,
    ExecutionService,
    RemoteResultCache,
    ResultCache,
)
from repro.quantum.execution.disk_cache import encode_entry, key_digest
from repro.quantum.library import bell_pair


def _key(tag: int = 0) -> CacheKey:
    return CacheKey(
        circuit=f"{tag:016x}",
        backend="local_simulator",
        shots=64,
        seed=7,
        noise="ideal",
        memory=False,
    )


def _dead_url() -> str:
    """A URL nothing listens on (bind an ephemeral port, then release it)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"http://127.0.0.1:{port}"


class TestServerProtocol:
    def test_put_then_get_roundtrip(self, tmp_path):
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url)
            client.put(_key(), {"00": 40, "11": 24}, None)
            assert client.get(_key()) == ({"00": 40, "11": 24}, None)
            assert client.get(_key(9)) is None  # miss: 404, not an error
            assert client.errors == 0

    def test_stats_endpoint(self, tmp_path):
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url)
            client.put(_key(), {"0": 64}, None)
            stats = client.stats()
            assert stats is not None
            assert stats["entries"] == 1
            assert stats["bytes"] > 0

    def test_unknown_path_is_404(self, tmp_path):
        with CacheServer(tmp_path) as server:
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(f"{server.url}/nope", timeout=2)
            assert info.value.code == 404

    def test_put_with_mismatched_digest_is_rejected(self, tmp_path):
        """Content-addressing is enforced server-side: an entry can never be
        planted under a digest that does not match its embedded key."""
        with CacheServer(tmp_path) as server:
            entry = encode_entry(_key(1), {"0": 64}, None)
            wrong = key_digest(_key(2))
            request = urllib.request.Request(
                f"{server.url}/entry/{wrong}",
                data=json.dumps(entry).encode(),
                method="PUT",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=2)
            assert info.value.code == 400
            assert len(server.disk) == 0

    def test_put_with_garbage_body_is_rejected(self, tmp_path):
        with CacheServer(tmp_path) as server:
            request = urllib.request.Request(
                f"{server.url}/entry/{key_digest(_key())}",
                data=b"{ not json",
                method="PUT",
            )
            with pytest.raises(urllib.error.HTTPError) as info:
                urllib.request.urlopen(request, timeout=2)
            assert info.value.code == 400

    def test_download_refreshes_server_side_lru_order(self, tmp_path):
        """Regression: a GET must touch the entry's mtime, or server-side
        eviction would delete the fleet's most-downloaded entries first."""
        import os

        with CacheServer(
            tmp_path, limits=CacheLimits(max_entries=2)
        ) as server:
            client = RemoteResultCache(server.url)
            client.put(_key(1), {"0": 1}, None)
            client.put(_key(2), {"0": 2}, None)
            old = 1_000_000_000
            for tag in (1, 2):
                path = tmp_path / f"{key_digest(_key(tag))}.json"
                os.utime(path, (old + tag, old + tag))
            # Entry 1 is older on disk but hot: the fleet keeps fetching it.
            assert client.get(_key(1)) is not None
            client.put(_key(3), {"0": 3}, None)  # forces one eviction
            assert client.get(_key(1)) is not None  # hot entry survived
            assert client.get(_key(2)) is None  # cold one was the victim

    def test_server_limits_bound_the_store(self, tmp_path):
        with CacheServer(
            tmp_path, limits=CacheLimits(max_entries=2)
        ) as server:
            client = RemoteResultCache(server.url)
            for tag in range(5):
                client.put(_key(tag), {"0": tag}, None)
            assert len(server.disk) <= 2
            assert server.disk.evictions >= 3


class TestClientHardening:
    def test_dead_server_degrades_to_miss_never_error(self, tmp_path):
        client = RemoteResultCache(_dead_url(), timeout=0.5)
        assert client.get(_key()) is None
        client.put(_key(), {"0": 64}, None)  # must not raise
        assert client.errors == 2

    def test_offline_breaker_stops_hammering_a_dead_server(self, monkeypatch):
        attempts = []

        def exploding_urlopen(*args, **kwargs):
            attempts.append(1)
            raise urllib.error.URLError("connection refused")

        monkeypatch.setattr(urllib.request, "urlopen", exploding_urlopen)
        client = RemoteResultCache(
            "http://cache.invalid:1", offline_after=3, retry_interval=3600
        )
        for _ in range(20):
            assert client.get(_key()) is None
        # Only the first `offline_after` lookups went to the network; the
        # rest were served as instant local misses.
        assert len(attempts) == 3
        assert client.errors == 3

    def test_persistent_5xx_trips_the_breaker(self, monkeypatch):
        """Regression: a proxy answering 502 to everything must engage the
        offline breaker just like a dead socket — 4xx (a live server saying
        'miss') must not."""
        attempts = []

        def bad_gateway(url, *args, **kwargs):
            attempts.append(1)
            target = url.full_url if hasattr(url, "full_url") else url
            raise urllib.error.HTTPError(target, 502, "Bad Gateway", {}, None)

        monkeypatch.setattr(urllib.request, "urlopen", bad_gateway)
        client = RemoteResultCache(
            "http://cache.invalid:1", offline_after=3, retry_interval=3600
        )
        for _ in range(20):
            assert client.get(_key()) is None
        assert len(attempts) == 3

    def test_read_verification_rejects_foreign_entries(self, tmp_path):
        """A server file whose embedded key does not match the requested key
        (stale store, digest collision, tampering) must read as a miss."""
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url)
            client.put(_key(1), {"0": 64}, None)
            # Re-address key 1's entry under key 2's digest, server-side.
            disk = DiskResultCache(tmp_path)
            src = disk.cache_dir / f"{key_digest(_key(1))}.json"
            dst = disk.cache_dir / f"{key_digest(_key(2))}.json"
            dst.write_bytes(src.read_bytes())
            assert client.get(_key(2)) is None
            assert client.get(_key(1)) is not None

    def test_read_verification_rejects_non_json(self, tmp_path):
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url)
            (server.disk.cache_dir / f"{key_digest(_key())}.json").write_text(
                "][ garbage"
            )
            assert client.get(_key()) is None

    def test_rejects_non_http_url(self):
        with pytest.raises(ValueError, match="http"):
            RemoteResultCache("ftp://somewhere")

    def test_stats_counts_malformed_json_as_failure(self, monkeypatch):
        """Regression: a misbehaving proxy answering 200s full of HTML used
        to make stats() return None silently — indistinguishable from "no
        server".  It must count towards errors and the offline breaker."""
        import io

        class _HtmlResponse(io.BytesIO):
            def __init__(self):
                super().__init__(b"<html>proxy error</html>")

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        attempts = []

        def html_urlopen(*args, **kwargs):
            attempts.append(1)
            return _HtmlResponse()

        monkeypatch.setattr(urllib.request, "urlopen", html_urlopen)
        client = RemoteResultCache(
            "http://cache.invalid:1", offline_after=3, retry_interval=3600
        )
        for _ in range(3):
            assert client.stats() is None
        assert client.errors == 3
        # Three malformed responses engaged the breaker like a dead socket:
        # the next get() is an instant local miss, no network attempt.
        before = len(attempts)
        assert client.get(_key()) is None
        assert len(attempts) == before

    def test_stats_still_none_and_quiet_on_dead_server(self):
        client = RemoteResultCache(_dead_url(), timeout=0.5)
        assert client.stats() is None
        assert client.errors == 1


class TestServerLifecycle:
    """close()/stop() in every state, and EADDRINUSE-free restarts."""

    def _reserved_port(self) -> int:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_start_stop_start_on_a_fixed_port(self, tmp_path):
        """Regression: stop() used to leave lifecycle edge cases (and a
        never-started server would deadlock in socketserver's shutdown);
        a back-to-back restart on the same fixed port must just work."""
        port = self._reserved_port()
        first = CacheServer(tmp_path / "a", port=port).start()
        RemoteResultCache(first.url).put(_key(), {"0": 64}, None)
        first.close()
        second = CacheServer(tmp_path / "b", port=port).start()
        try:
            client = RemoteResultCache(second.url)
            client.put(_key(1), {"0": 32}, None)
            assert client.get(_key(1)) is not None
            assert client.errors == 0
        finally:
            second.close()

    def test_stop_before_start_does_not_hang(self, tmp_path):
        server = CacheServer(tmp_path)
        server.stop()  # must return immediately, not deadlock

    def test_stop_is_idempotent_and_start_after_close_refuses(self, tmp_path):
        from repro.errors import BackendError

        server = CacheServer(tmp_path).start()
        server.stop()
        server.stop()
        server.close()
        with pytest.raises(BackendError, match="closed"):
            server.start()

    def test_socket_is_released_immediately(self, tmp_path):
        server = CacheServer(tmp_path).start()
        port = server.port
        server.close()
        # The listening socket is gone: binding the same port succeeds.
        probe = socket.socket()
        try:
            probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            probe.bind(("127.0.0.1", port))
        finally:
            probe.close()


class TestAuth:
    """Shared-token auth: every endpoint, wrong/missing token, env wiring."""

    def _get(self, url, token=None):
        request = urllib.request.Request(url)
        if token:
            request.add_header("Authorization", f"Bearer {token}")
        return urllib.request.urlopen(request, timeout=2)

    def test_missing_or_wrong_token_is_401_on_every_endpoint(self, tmp_path):
        """Cache routes *and* the work-dispatch routes layered on the same
        transport answer 401 to anything but the exact token."""
        import base64

        from repro.quantum.execution import EvalCoordinator

        with EvalCoordinator(
            tmp_path, token="fleet-secret", fallback_workers=0
        ) as server:
            endpoints = [
                ("GET", f"/entry/{key_digest(_key())}", None),
                ("PUT", f"/entry/{key_digest(_key())}",
                 json.dumps(encode_entry(_key(), {"0": 1}, None)).encode()),
                ("GET", "/stats", None),
                ("GET", "/metrics", None),
                ("GET", "/work/status", None),
                ("POST", "/work/lease", b'{"worker": "w"}'),
                ("POST", "/work/heartbeat", b'{"lease": 1}'),
                ("POST", "/work/complete",
                 json.dumps({"lease": 1, "result": base64.b64encode(
                     b"x").decode()}).encode()),
            ]
            for token in (None, "wrong-token"):
                for method, path, body in endpoints:
                    request = urllib.request.Request(
                        f"{server.url}{path}", data=body, method=method
                    )
                    if token:
                        request.add_header(
                            "Authorization", f"Bearer {token}"
                        )
                    with pytest.raises(urllib.error.HTTPError) as info:
                        urllib.request.urlopen(request, timeout=2)
                    assert info.value.code == 401, (token, method, path)
            # Nothing leaked into the store through any unauthorized route.
            assert len(server.disk) == 0

    def test_correct_token_roundtrips(self, tmp_path):
        with CacheServer(tmp_path, token="fleet-secret") as server:
            client = RemoteResultCache(server.url, token="fleet-secret")
            client.put(_key(), {"00": 32, "11": 32}, None)
            assert client.get(_key()) == ({"00": 32, "11": 32}, None)
            assert client.stats()["entries"] == 1
            assert client.errors == 0

    def test_client_auth_failure_raises_instead_of_miss(self, tmp_path):
        """Regression (satellite): a 401/403 must fail fast and loudly —
        not degrade to a silent miss, and not feed the offline breaker like
        a transient 5xx."""
        from repro.errors import BackendError

        with CacheServer(tmp_path, token="fleet-secret") as server:
            client = RemoteResultCache(server.url)  # no token at all
            with pytest.raises(BackendError, match="credentials"):
                client.get(_key())
            with pytest.raises(BackendError, match="credentials"):
                client.put(_key(), {"0": 1}, None)
            with pytest.raises(BackendError, match="REPRO_CACHE_TOKEN"):
                client.stats()
            # The breaker was never engaged: an auth failure is not an
            # offline server, and retries keep raising rather than being
            # served as instant local misses.
            assert client.errors == 0
            with pytest.raises(BackendError):
                client.get(_key())

    def test_env_token_wiring(self, tmp_path, monkeypatch):
        """REPRO_CACHE_TOKEN flows into clients built without an explicit
        token — including the service's remote tier."""
        monkeypatch.setenv("REPRO_CACHE_TOKEN", "fleet-secret")
        with CacheServer(tmp_path, token="fleet-secret") as server:
            client = RemoteResultCache(server.url)
            client.put(_key(), {"0": 64}, None)
            assert client.get(_key()) == ({"0": 64}, None)
            assert client.errors == 0

            service = ExecutionService(max_workers=1, remote_url=server.url)
            assert service.cache.remote.token == "fleet-secret"
            counts = service.run(
                bell_pair(measure=True), shots=40, seed=3
            ).result()
            assert sum(counts.get_counts().values()) == 40
            assert service.stats()["cache_remote_errors"] == 0
            service.shutdown()

    def test_explicit_token_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_TOKEN", "from-env")
        assert RemoteResultCache("http://x:1", token="explicit").token == (
            "explicit"
        )
        monkeypatch.delenv("REPRO_CACHE_TOKEN")
        assert RemoteResultCache("http://x:1").token is None

    def test_open_server_ignores_supplied_tokens(self, tmp_path):
        """A token-less server stays compatible with token-bearing clients
        (rolling out auth across a fleet worker-by-worker)."""
        with CacheServer(tmp_path) as server:
            client = RemoteResultCache(server.url, token="anything")
            client.put(_key(), {"0": 8}, None)
            assert client.get(_key()) == ({"0": 8}, None)
            assert client.errors == 0


class TestServiceWiring:
    def test_dead_server_never_fails_execution(self):
        service = ExecutionService(
            max_workers=1, remote_url=_dead_url()
        )
        service.cache.remote.timeout = 0.5
        counts = service.run(bell_pair(measure=True), shots=50, seed=4).result()
        assert sum(counts.get_counts().values()) == 50
        stats = service.stats()
        assert stats["simulations"] == 1
        assert stats["cache_remote_errors"] >= 1
        assert stats["cache_url"].startswith("http://127.0.0.1")
        service.shutdown()

    def test_remote_hit_promotes_into_local_disk(self, tmp_path):
        """A downloaded entry is written through to the local disk tier, so
        the *next* process on this machine does not even need the network."""
        with CacheServer(tmp_path / "server") as server:
            seeder = ExecutionService(max_workers=1, remote_url=server.url)
            counts = seeder.run(bell_pair(measure=True), shots=60, seed=2)
            counts = counts.result().get_counts()
            seeder.shutdown()

            local_dir = tmp_path / "local"
            fleet = ExecutionService(
                max_workers=1, cache_dir=local_dir, remote_url=server.url
            )
            fleet.run(bell_pair(measure=True), shots=60, seed=2)
            assert fleet.stats()["cache_remote_hits"] == 1
            fleet.shutdown()

        # Server gone; the promoted local entry still serves the result.
        offline = ExecutionService(max_workers=1, cache_dir=local_dir)
        replay = offline.run(bell_pair(measure=True), shots=60, seed=2).result()
        assert replay.get_counts() == counts
        assert offline.stats()["simulations"] == 0
        offline.shutdown()

    def test_prebuilt_cache_excludes_remote_url(self, tmp_path):
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="not both"):
            ExecutionService(cache=ResultCache(), remote_url="http://x:1")

    def test_cache_limits_require_cache_dir(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError, match="cache_dir"):
            ExecutionService(cache_limits=CacheLimits(max_bytes=1))

    def test_default_service_honours_cache_url_env(self, tmp_path, monkeypatch):
        from repro.quantum.execution import default_service, set_default_service

        with CacheServer(tmp_path) as server:
            monkeypatch.setenv("REPRO_CACHE_URL", server.url)
            monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "local"))
            monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "123456")
            set_default_service(None)
            try:
                service = default_service()
                assert service.stats()["cache_url"] == server.url
                assert service.cache.disk.limits == CacheLimits(max_bytes=123456)
            finally:
                set_default_service(None)
