"""The multi-tenant serving tier: keys, quotas, lanes, job store, /metrics.

Covers the admission-control primitives in isolation (token bucket,
registry, job store) and the serving behavior end-to-end over real HTTP:
tenant API keys as bearer credentials, 429 + ``Retry-After`` on rate
limits, quota exhaustion mid-batch, fair-share lane scheduling, the
Prometheus ``/metrics`` exposition, and a killed coordinator resuming
bit-identically from its job store.
"""

import io
import json
import pickle
import re
import urllib.error
import urllib.request
from email.message import Message

import pytest

from repro.errors import BackendError
from repro.quantum.execution import (
    CacheKey,
    CacheServer,
    ExecutionService,
    JobStore,
    RemoteResultCache,
    Tenant,
    TenantRegistry,
    TokenBucket,
)
from repro.quantum.execution.dispatch import (
    DispatchClient,
    EvalCoordinator,
    WorkQueue,
    encode_chunk,
    run_chunk_payload,
)
from repro.quantum.execution.remote_cache import parse_retry_after
from repro.quantum.execution.tenants import load_tenants


def _key(tag: int = 0) -> CacheKey:
    return CacheKey(
        circuit=f"{tag:016x}",
        backend="local_simulator",
        shots=64,
        seed=7,
        noise="ideal",
        memory=False,
    )


def _fake_clock(start: float = 0.0):
    clock = [start]
    return clock, (lambda: clock[0])


def _tenant_file(tmp_path, entries) -> str:
    path = tmp_path / "tenants.json"
    path.write_text(json.dumps(entries), encoding="utf-8")
    return str(path)


def _raw(url: str, key: str | None = None, method: str = "GET", data=None):
    headers = {"Authorization": f"Bearer {key}"} if key else {}
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    return urllib.request.urlopen(request, timeout=5)


# -- the token bucket ------------------------------------------------------------------


class TestTokenBucket:
    def test_starts_full_and_admits_exactly_at_the_boundary(self):
        clock, tick = _fake_clock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=tick)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        # Empty: the wait is the exact refill time of the deficit.
        assert bucket.try_acquire() == pytest.approx(1.0)
        # Exactly one token refilled — the boundary itself admits.
        clock[0] = 1.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_refill_is_capped_at_burst(self):
        clock, tick = _fake_clock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=tick)
        clock[0] = 1e6
        assert bucket.peek() == 3.0

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


# -- the tenant registry ---------------------------------------------------------------


class TestTenantValidation:
    def test_name_charset_is_enforced(self):
        with pytest.raises(ValueError, match="name"):
            Tenant('evil"tenant', "k")
        with pytest.raises(ValueError, match="name"):
            Tenant("", "k")

    def test_key_priority_and_quotas_are_validated(self):
        with pytest.raises(ValueError, match="key"):
            Tenant("a", "")
        with pytest.raises(ValueError, match="priority"):
            Tenant("a", "k", priority=0)
        with pytest.raises(ValueError, match="max_bytes"):
            Tenant("a", "k", max_bytes=-1)
        with pytest.raises(ValueError, match="burst without rate"):
            Tenant("a", "k", burst=5.0)

    def test_registry_rejects_duplicate_names_and_keys(self):
        with pytest.raises(ValueError, match="duplicate tenant names"):
            TenantRegistry([Tenant("a", "k1"), Tenant("a", "k2")])
        with pytest.raises(ValueError, match="duplicate tenant API keys"):
            TenantRegistry([Tenant("a", "k"), Tenant("b", "k")])


class TestTenantFile:
    def test_loads_bare_list_and_wrapped_document(self, tmp_path):
        entries = [
            {"name": "alice", "key": "ka", "priority": 3, "max_bytes": 1000},
            {"name": "bob", "key": "kb", "rate_per_sec": 5, "burst": 10},
        ]
        bare = TenantRegistry.from_file(_tenant_file(tmp_path, entries))
        (tmp_path / "wrapped.json").write_text(json.dumps({"tenants": entries}))
        wrapped = TenantRegistry.from_file(tmp_path / "wrapped.json")
        for registry in (bare, wrapped):
            assert registry.names() == ["alice", "bob"]
            assert registry.priorities() == {"alice": 3, "bob": 1}

    def test_unknown_field_is_a_hard_error(self, tmp_path):
        """A typo like "max_byte" must refuse to load, not silently grant
        an unlimited quota."""
        path = _tenant_file(tmp_path, [{"name": "a", "key": "k", "max_byte": 1}])
        with pytest.raises(ValueError, match="unknown fields.*max_byte"):
            TenantRegistry.from_file(path)

    def test_invalid_json_and_wrong_shapes_are_errors(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("{ not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            TenantRegistry.from_file(path)
        path.write_text('"just a string"')
        with pytest.raises(ValueError, match="list of tenant objects"):
            TenantRegistry.from_file(path)

    def test_load_tenants_resolves_env_fallback(self, tmp_path, monkeypatch):
        path = _tenant_file(tmp_path, [{"name": "a", "key": "k"}])
        monkeypatch.delenv("REPRO_TENANT_FILE", raising=False)
        assert load_tenants(None) is None
        monkeypatch.setenv("REPRO_TENANT_FILE", path)
        assert len(load_tenants(None)) == 1
        # An explicit path wins over the environment.
        other = tmp_path / "other.json"
        other.write_text("[]")
        assert len(load_tenants(other)) == 0


class TestRegistryAdmission:
    def test_authenticate_matches_exactly_one_key(self):
        registry = TenantRegistry([Tenant("a", "ka"), Tenant("b", "kb")])
        assert registry.authenticate("Bearer ka").name == "a"
        assert registry.authenticate("Bearer kb").name == "b"
        assert registry.authenticate("Bearer nope") is None
        assert registry.authenticate("") is None
        # Non-ASCII input must not crash the comparison (it 401s upstream).
        assert registry.authenticate("Bearer käß☃") is None

    def test_throttle_rounds_retry_after_up_to_at_least_one(self):
        clock, tick = _fake_clock()
        registry = TenantRegistry(
            [
                Tenant("slow", "ks", rate_per_sec=0.25, burst=1, clock=tick),
                Tenant("fast", "kf", rate_per_sec=10.0, burst=1, clock=tick),
                Tenant("open", "ko", clock=tick),
            ],
            clock=tick,
        )
        slow, fast, unlimited = (
            registry.authenticate(f"Bearer {k}") for k in ("ks", "kf", "ko")
        )
        assert registry.throttle(slow) is None  # burst token
        assert registry.throttle(slow) == 4.0  # ceil(1 / 0.25)
        assert registry.throttle(fast) is None
        assert registry.throttle(fast) == 1.0  # 0.1s rounds up to the floor
        for _ in range(50):  # no bucket: never throttled
            assert registry.throttle(unlimited) is None
        snap = {row["name"]: row for row in registry.snapshot()}
        assert snap["slow"]["throttled"] == 1
        assert snap["open"]["throttled"] == 0

    def test_byte_quota_denies_then_stops_charging(self):
        registry = TenantRegistry([Tenant("a", "k", max_bytes=100)])
        tenant = registry.authenticate("Bearer k")
        assert registry.charge_bytes(tenant, 60) is True
        assert registry.charge_bytes(tenant, 41) is False  # would exceed
        assert registry.charge_bytes(tenant, 40) is True  # exact fit
        assert tenant.bytes_used == 100
        assert tenant.quota_denials == 1

    def test_chunk_quota_reserve_and_refund(self):
        registry = TenantRegistry([Tenant("a", "k", max_chunks=2)])
        tenant = registry.authenticate("Bearer k")
        assert registry.try_charge_chunk(tenant) is True
        assert registry.try_charge_chunk(tenant) is True
        assert registry.try_charge_chunk(tenant) is False
        registry.refund_chunk(tenant)
        assert registry.try_charge_chunk(tenant) is True
        assert tenant.chunks_used == 2
        assert tenant.quota_denials == 1


# -- tenant keys over real HTTP --------------------------------------------------------


class TestServerTenantAuth:
    def test_tenant_key_authenticates_cache_endpoints(self, tmp_path):
        registry = TenantRegistry([Tenant("alice", "secret-a")])
        with CacheServer(tmp_path, tenants=registry) as server:
            client = RemoteResultCache(server.url, token="secret-a")
            client.put(_key(), {"00": 40, "11": 24}, None)
            assert client.get(_key()) == ({"00": 40, "11": 24}, None)
            assert client.errors == 0
            assert registry.snapshot()[0]["requests"] == 2

    def test_unknown_key_is_401_and_raises_client_side(self, tmp_path):
        registry = TenantRegistry([Tenant("alice", "secret-a")])
        with CacheServer(tmp_path, tenants=registry) as server:
            with pytest.raises(BackendError, match="rejected credentials"):
                RemoteResultCache(server.url, token="wrong").get(_key())
            with pytest.raises(BackendError, match="rejected credentials"):
                RemoteResultCache(server.url, token="").get(_key())

    def test_admin_token_coexists_and_is_never_throttled(self, tmp_path):
        registry = TenantRegistry(
            [Tenant("alice", "secret-a", rate_per_sec=0.01, burst=1)]
        )
        with CacheServer(
            tmp_path, token="admin-token", tenants=registry
        ) as server:
            admin = RemoteResultCache(server.url, token="admin-token")
            for _ in range(5):  # far past any tenant's bucket
                admin.put(_key(), {"0": 64}, None)
            assert admin.throttles == 0
            assert admin.errors == 0
            # The tenant key still works alongside the admin token...
            tenant = RemoteResultCache(server.url, token="secret-a")
            assert tenant.get(_key()) is not None
            # ...and *is* rate limited.
            assert tenant.get(_key()) is None
            assert tenant.throttles == 1


class TestThrottleEdges:
    def test_rate_limit_429_carries_retry_after(self, tmp_path):
        registry = TenantRegistry(
            [Tenant("alice", "secret-a", rate_per_sec=0.5, burst=1)]
        )
        with CacheServer(tmp_path, tenants=registry) as server:
            _raw(f"{server.url}/stats", key="secret-a").close()  # burst token
            with pytest.raises(urllib.error.HTTPError) as info:
                _raw(f"{server.url}/stats", key="secret-a")
            assert info.value.code == 429
            assert int(info.value.headers["Retry-After"]) >= 1

    def test_client_honors_429_without_feeding_the_breaker(self, tmp_path):
        registry = TenantRegistry(
            [Tenant("alice", "secret-a", rate_per_sec=0.01, burst=1)]
        )
        with CacheServer(tmp_path, tenants=registry) as server:
            client = RemoteResultCache(server.url, token="secret-a")
            client.put(_key(), {"0": 64}, None)  # consumes the one token
            assert client.get(_key()) is None  # 429
            assert client.throttles == 1
            assert client.errors == 0  # a throttled server is healthy
            assert client._consecutive == 0  # breaker untouched
            assert client._offline() is True  # but the backoff is active
            requests_before = registry.snapshot()[0]["requests"]
            assert client.get(_key()) is None  # sat out: no network attempt
            assert registry.snapshot()[0]["requests"] == requests_before

    def test_byte_quota_429_has_no_retry_after(self, tmp_path):
        """Waiting refills a rate limit, not a quota — so the quota 429
        deliberately omits Retry-After and the client backs off briefly."""
        registry = TenantRegistry([Tenant("bob", "secret-b", max_bytes=10)])
        with CacheServer(tmp_path, tenants=registry) as server:
            body = json.dumps({"padding": "x" * 64}).encode()
            with pytest.raises(urllib.error.HTTPError) as info:
                _raw(
                    f"{server.url}/entry/{'0' * 32}",
                    key="secret-b",
                    method="PUT",
                    data=body,
                )
            assert info.value.code == 429
            assert info.value.headers.get("Retry-After") is None
            assert len(server.disk) == 0
            assert registry.snapshot()[0]["quota_denials"] == 1
            client = RemoteResultCache(server.url, token="secret-b")
            client.put(_key(), {"0": 64}, None)
            assert client.throttles == 1
            assert client.errors == 0

    def test_5xx_feeds_the_breaker_not_the_throttle_counter(self, monkeypatch):
        client = RemoteResultCache("http://127.0.0.1:9", offline_after=2)

        def unavailable(request, timeout=None):
            raise urllib.error.HTTPError(
                request.full_url, 503, "busy", Message(), io.BytesIO(b"")
            )

        monkeypatch.setattr(urllib.request, "urlopen", unavailable)
        assert client.get(_key()) is None
        assert client.get(_key()) is None
        assert client.errors == 2
        assert client.throttles == 0
        assert client._offline() is True

    def test_parse_retry_after_forms(self):
        assert parse_retry_after({"Retry-After": "5"}) == 5.0
        assert parse_retry_after({"Retry-After": "2.5"}) == 2.5
        assert parse_retry_after({"Retry-After": "-3"}) == 0.0
        # The HTTP-date form falls back to the client's default backoff.
        assert parse_retry_after({"Retry-After": "Fri, 08 Aug 2026"}) is None
        assert parse_retry_after({}) is None
        assert parse_retry_after(None) is None


# -- fair-share lanes ------------------------------------------------------------------


class TestFairShareLanes:
    def test_single_default_lane_is_strict_fifo(self):
        queue = WorkQueue()
        queue.add_chunks([b"%d" % i for i in range(5)])
        order = [queue.lease("w")[1] for _ in range(5)]
        assert order == [0, 1, 2, 3, 4]

    def test_weighted_round_robin_across_lanes(self):
        queue = WorkQueue()
        queue.set_lane_priority("alice", 2)
        queue.add_chunks([b"a%d" % i for i in range(4)], lane="alice")
        queue.add_chunks([b"b%d" % i for i in range(4)], lane="bob")
        served = [queue.lease("w")[2] for _ in range(8)]
        # Alice (weight 2) gets two chunks per turn, bob (weight 1) one.
        assert served == [b"a0", b"a1", b"b0", b"a2", b"a3", b"b1", b"b2", b"b3"]

    def test_small_job_is_not_starved_by_a_large_sweep(self):
        queue = WorkQueue()
        queue.add_chunks([b"big%d" % i for i in range(100)], lane="big")
        queue.add_chunks([b"s%d" % i for i in range(3)], lane="small")
        first_eight = [queue.lease("w")[2] for _ in range(8)]
        # The 3-chunk job fully drains within the first few leases instead
        # of waiting behind all 100 of the sweep's chunks.
        assert {b"s0", b"s1", b"s2"} <= set(first_eight)

    def test_requeued_chunk_returns_to_its_own_lane(self):
        queue = WorkQueue()
        queue.add_chunks([b"a0"], lane="alice")
        queue.add_chunks([b"b0", b"b1"], lane="bob")
        lease_id, index, payload = queue.lease("w")
        assert payload == b"a0"
        assert queue.fail(lease_id) is True
        status = queue.status()
        assert status["lanes"] == {"alice": 1, "bob": 2}
        # The rotation continues with bob; alice's retry comes back around.
        drained = [queue.lease("w")[2] for _ in range(3)]
        assert set(drained) == {b"a0", b"b0", b"b1"}

    def test_coordinator_applies_tenant_priorities_to_lanes(self, tmp_path):
        registry = TenantRegistry(
            [Tenant("alice", "ka", priority=3), Tenant("bob", "kb")]
        )
        coordinator = EvalCoordinator(
            tmp_path / "store", tenants=registry, fallback_workers=0
        )
        try:
            assert coordinator.queue._lane_priority == {"alice": 3, "bob": 1}
        finally:
            coordinator.stop()


# -- chunk quotas on the dispatch endpoints --------------------------------------------


class TestChunkQuota:
    def test_quota_exhaustion_mid_batch_leaves_the_queue_consistent(
        self, tmp_path
    ):
        registry = TenantRegistry([Tenant("carol", "kc", max_chunks=1)])
        coordinator = EvalCoordinator(
            tmp_path / "store", tenants=registry, fallback_workers=0
        ).start()
        try:
            payload = encode_chunk(_double, (21,))
            coordinator.queue.add_chunks([payload, payload], lane="carol")
            client = DispatchClient(coordinator.url, token="kc")
            first = client.lease("carol-worker")
            assert first and not first.get("empty")
            outcome = run_chunk_payload(payload)
            assert client.complete(int(first["lease"]), outcome) is True
            # The second lease hits the spent quota: 429, counted as a
            # throttle (never an error), and no chunk is lost or leased.
            assert client.lease("carol-worker") is None
            assert client.throttles == 1
            assert client.errors == 0
            assert client.pause_hint() > 0.0
            status = coordinator.queue.status()
            assert status == {
                "total": 2,
                "pending": 1,
                "leased": 0,
                "done": 1,
                "requeues": 0,
                "workers": 1,
                "lanes": {"carol": 1},
            }
        finally:
            coordinator.stop()

    def test_empty_queue_refunds_the_chunk_reservation(self, tmp_path):
        registry = TenantRegistry([Tenant("carol", "kc", max_chunks=1)])
        coordinator = EvalCoordinator(
            tmp_path / "store", tenants=registry, fallback_workers=0
        ).start()
        try:
            client = DispatchClient(coordinator.url, token="kc")
            for _ in range(3):  # repeated empty leases must not burn quota
                assert client.lease("carol-worker").get("empty") is True
            assert registry.snapshot()[0]["chunks_used"] == 0
        finally:
            coordinator.stop()

    def test_heartbeats_are_exempt_from_throttling(self, tmp_path):
        """A throttled tenant's heartbeats must still land: dropping them
        would expire healthy leases and turn a rate limit into requeues."""
        registry = TenantRegistry(
            [Tenant("dave", "kd", rate_per_sec=0.01, burst=1)]
        )
        coordinator = EvalCoordinator(
            tmp_path / "store", tenants=registry, fallback_workers=0
        ).start()
        try:
            coordinator.queue.add_chunks([encode_chunk(_double, (1,))])
            client = DispatchClient(coordinator.url, token="kd")
            leased = client.lease("dave-worker")  # consumes the one token
            assert leased and not leased.get("empty")
            # The rate bucket is empty, but heartbeats still succeed...
            for _ in range(3):
                assert client.heartbeat(int(leased["lease"])) is True
            assert client.throttles == 0
            # ...while a throttleable verb answers 429.
            assert client.status() is None
            assert client.throttles == 1
        finally:
            coordinator.stop()


# -- /metrics --------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" \S+$"
)


def _scrape(url: str, key: str) -> tuple[str, str]:
    with _raw(f"{url}/metrics", key=key) as response:
        return (
            response.read().decode("utf-8"),
            response.headers.get("Content-Type", ""),
        )


class TestMetricsEndpoint:
    def test_every_service_counter_and_tenant_is_exported(self, tmp_path):
        registry = TenantRegistry([Tenant("alice", "ka"), Tenant("bob", "kb")])
        service = ExecutionService()
        coordinator = EvalCoordinator(
            tmp_path / "store",
            tenants=registry,
            service=service,
            job_store=tmp_path / "jobs",
            fallback_workers=0,
        ).start()
        try:
            RemoteResultCache(coordinator.url, token="ka").put(
                _key(), {"0": 64}, None
            )
            body, content_type = _scrape(coordinator.url, "kb")
        finally:
            coordinator.stop()
        assert content_type.startswith("text/plain; version=0.0.4")
        # Every stats() counter is exported: numeric keys as gauges, the
        # string-valued ones as labels on the info sample.
        for stats_key, value in service.stats().items():
            if isinstance(value, (int, float)):
                assert f"repro_service_{stats_key}" in body
            else:
                assert f'{stats_key}="' in body
        # Per-tenant counters, nonzero for the tenant that spoke.
        alice = re.search(
            r'^repro_tenant_requests_total\{tenant="alice"\} (\d+)$',
            body,
            re.MULTILINE,
        )
        assert alice is not None and int(alice.group(1)) >= 1
        assert 'repro_tenant_requests_total{tenant="bob"}' in body
        assert 'repro_tenant_priority{tenant="alice"} 1' in body
        # Store, queue, and job-store snapshots ride along.
        assert "repro_store_entries 1" in body
        assert "repro_work_pending 0" in body
        assert "repro_jobs_pending 0" in body

    def test_exposition_format_is_well_formed(self, tmp_path):
        registry = TenantRegistry([Tenant("alice", "ka")])
        with CacheServer(tmp_path, tenants=registry) as server:
            body, _ = _scrape(server.url, "ka")
        help_names = []
        for line in body.rstrip("\n").split("\n"):
            if line.startswith("# HELP "):
                help_names.append(line.split()[2])
            elif line.startswith("# TYPE "):
                assert line.split()[3] in ("gauge", "counter")
            else:
                assert _SAMPLE_RE.match(line), f"malformed sample: {line!r}"
        # One contiguous block per metric name — HELP appears exactly once.
        assert len(help_names) == len(set(help_names))

    def test_label_values_are_escaped(self):
        from repro.quantum.execution.metrics import (
            escape_label_value,
            render_samples,
        )

        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        text = render_samples([("m", {"tenant": 'x"y'}, 1)])
        assert 'm{tenant="x\\"y"} 1' in text

    def test_metrics_stay_scrapeable_while_throttled(self, tmp_path):
        """The scrape endpoint is throttle-exempt: observability must not
        go dark exactly when a tenant is being limited."""
        registry = TenantRegistry(
            [Tenant("alice", "ka", rate_per_sec=0.01, burst=1)]
        )
        with CacheServer(tmp_path, tenants=registry) as server:
            _raw(f"{server.url}/stats", key="ka").close()  # spend the token
            with pytest.raises(urllib.error.HTTPError) as info:
                _raw(f"{server.url}/stats", key="ka")
            assert info.value.code == 429
            body, _ = _scrape(server.url, "ka")
            assert 'repro_tenant_throttled_total{tenant="alice"} 1' in body

    def test_bare_cache_server_serves_metrics_without_extras(self, tmp_path):
        with CacheServer(tmp_path) as server:
            with _raw(f"{server.url}/metrics") as response:
                body = response.read().decode("utf-8")
        assert "repro_store_entries 0" in body
        assert "repro_tenant_requests_total" not in body
        assert "repro_work_pending" not in body


# -- the job store ---------------------------------------------------------------------


def _outcome_bytes(value) -> bytes:
    return pickle.dumps(("ok", value), protocol=pickle.HIGHEST_PROTOCOL)


class TestJobStore:
    def test_record_complete_restore_roundtrip(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        payload = b"chunk-payload"
        digest = JobStore.digest_of(payload)
        assert re.fullmatch(r"[0-9a-f]{32}", digest)
        store.record(digest, payload, "alice")
        assert store.restore(digest) is None  # pending: nothing to serve
        assert store.pending() == [(digest, payload, "alice")]
        store.complete(digest, _outcome_bytes(42), "alice")
        assert store.restore(digest) == ("ok", 42)
        assert store.pending() == []
        assert store.counts() == {"pending": 0, "done": 1}
        store.forget([digest])
        assert len(store) == 0

    def test_record_never_demotes_a_done_outcome(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        digest = JobStore.digest_of(b"p")
        store.complete(digest, _outcome_bytes(1))
        store.record(digest, b"p")  # a restarted run re-records everything
        assert store.restore(digest) == ("ok", 1)

    def test_corrupt_records_are_discarded_not_raised(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        store.record(JobStore.digest_of(b"good"), b"good")
        torn = store.job_dir / f"{'f' * 32}.json"
        torn.write_text("{ torn mid-wri")
        assert len(store.pending()) == 1
        assert not torn.exists()  # quarantined on first read

    def test_restore_rejects_implausible_outcomes(self, tmp_path):
        """A record whose outcome does not unpickle to ("ok"|"err", v) is
        treated as pending — re-executed, never folded."""
        store = JobStore(tmp_path / "jobs")
        digest = JobStore.digest_of(b"p")
        store.complete(digest, pickle.dumps("not an outcome tuple"))
        assert store.restore(digest) is None
        store.complete(digest, b"\x00not a pickle")
        assert store.restore(digest) is None

    def test_write_failure_degrades_to_reexecution(self, tmp_path, monkeypatch):
        """Persistence is best-effort: a full disk must degrade to
        re-execution after restart, not fail the live run."""
        store = JobStore(tmp_path / "jobs")

        def disk_full(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(
            "repro.quantum.execution.jobstore.os.replace", disk_full
        )
        store.record(JobStore.digest_of(b"p"), b"p")  # swallowed
        assert store.pending() == []
        assert list(store.job_dir.iterdir()) == []  # tmp file cleaned up


class TestRestartResume:
    def test_resumed_run_restores_done_chunks_and_executes_the_rest(
        self, tmp_path
    ):
        """The coordinator died with one outcome persisted and two chunks
        pending.  The restarted run must re-fold the stored outcome from
        disk (never re-executing it) and execute only the remainder."""
        job_dir = tmp_path / "jobs"
        payloads = [encode_chunk(_double, (i,)) for i in range(3)]
        first_life = JobStore(job_dir)
        for payload in payloads:
            first_life.record(JobStore.digest_of(payload), payload)
        # Chunk 1 completed before the kill; its outcome is on disk.
        first_life.complete(JobStore.digest_of(payloads[1]), _outcome_bytes(2))
        coordinator = EvalCoordinator(
            tmp_path / "store",
            job_store=job_dir,
            fallback_workers=1,
            fallback_grace=0.0,
        ).start()
        try:
            results = coordinator.run_chunks(payloads)
        finally:
            coordinator.stop()
        assert results == [0, 2, 4]
        # Only the two unfinished chunks were queued for execution.
        assert coordinator.queue.status()["total"] == 2
        # A cleanly completed run leaves no records behind.
        assert len(JobStore(job_dir)) == 0

    def test_stored_err_outcome_is_reserved_not_reexecuted(self, tmp_path):
        """A chunk that *failed* before the kill re-raises from the store on
        restart — deterministic chunks fail identically, so re-running would
        only waste the work — and the records stay for the next attempt."""
        job_dir = tmp_path / "jobs"
        payload = encode_chunk(_double, (1,))
        digest = JobStore.digest_of(payload)
        store = JobStore(job_dir)
        store.record(digest, payload)
        store.complete(
            digest,
            pickle.dumps(
                ("err", RuntimeError("boom")), protocol=pickle.HIGHEST_PROTOCOL
            ),
        )
        coordinator = EvalCoordinator(
            tmp_path / "store",
            job_store=job_dir,
            fallback_workers=1,
            fallback_grace=0.0,
        ).start()
        try:
            with pytest.raises(RuntimeError, match="boom"):
                coordinator.run_chunks([payload])
        finally:
            coordinator.stop()
        # The failed run kept its records: a later retry still restores.
        assert JobStore(job_dir).counts()["done"] == 1

    def test_run_without_job_store_leaves_no_files(self, tmp_path):
        coordinator = EvalCoordinator(
            tmp_path / "store", fallback_workers=1, fallback_grace=0.0
        ).start()
        try:
            assert coordinator.run_chunks(
                [encode_chunk(_double, (5,))]
            ) == [10]
        finally:
            coordinator.stop()
        assert not (tmp_path / "jobs").exists()


def _double(x):
    return x * 2
