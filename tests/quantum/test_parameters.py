"""Symbolic parameters and late binding: semantics, bit-identity, caching.

The contract under test (ISSUE 9): one parameterized *template* plus N
bindings must behave exactly like N concretely-built circuits — bit-identical
instructions and counts on every executor strategy — while costing one
structure fingerprint, one transpilation and one batch-planner group.
"""

import math
import pickle

import pytest

from repro.errors import (
    CircuitError,
    GateError,
    QasmError,
    TranspilerError,
    ValidationError,
)
from repro.quantum.analysis import (
    DIAGNOSTIC_CODES,
    analyze_circuit,
    circuit_facts,
    structure_fingerprint,
    unbound_parameter_errors,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService, circuit_fingerprint
from repro.quantum.parameters import (
    BoundProvenance,
    Parameter,
    ParameterExpression,
    bind_parameter,
    is_symbolic,
    params_from_json,
    params_to_json,
)
from repro.quantum.qasm import circuit_to_qasm, qasm_to_circuit

ROTATION_BASIS = ("ry", "rz", "cx", "h", "measure")


def sweep_template(num_qubits: int = 3) -> QuantumCircuit:
    """An entangled template with one free angle used across several gates."""
    theta = Parameter("theta")
    qc = QuantumCircuit(num_qubits, num_qubits, name="sweep")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    qc.ry(theta, 0)
    qc.rz(theta / 2, 1)
    qc.ry(2 * theta - 0.5, num_qubits - 1)
    qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


def concrete_sweep(value: float, num_qubits: int = 3) -> QuantumCircuit:
    """The same circuit built directly from a concrete float."""
    qc = QuantumCircuit(num_qubits, num_qubits, name="sweep")
    qc.h(0)
    for q in range(num_qubits - 1):
        qc.cx(q, q + 1)
    qc.ry(value, 0)
    qc.rz(value / 2, 1)
    qc.ry(2 * value - 0.5, num_qubits - 1)
    qc.measure(list(range(num_qubits)), list(range(num_qubits)))
    return qc


# Sweep points chosen to include values whose derived expressions are NOT
# representable prettily (0.1 * k accumulates binary error) — bit-identity
# must hold anyway because bind replays the identical float ops.
SWEEP_POINTS = [0.1 * k - 1.7 for k in range(8)] + [0.0, math.pi, -2.5]


class TestParameterSemantics:
    def test_identifier_names_only(self):
        for bad in ("", "2theta", "a-b", "a b", "pi"):
            with pytest.raises(CircuitError):
                Parameter(bad)

    def test_name_based_equality_and_hash(self):
        assert Parameter("theta") == Parameter("theta")
        assert hash(Parameter("theta")) == hash(Parameter("theta"))
        assert Parameter("theta") != Parameter("phi")

    def test_expression_arithmetic_replays_same_float_ops(self):
        theta = Parameter("theta")
        expr = (theta / 3 + 1.1) * 7 - 0.3
        for v in SWEEP_POINTS:
            assert expr.bind_value(v) == (v / 3 + 1.1) * 7 - 0.3

    def test_right_hand_forms(self):
        theta = Parameter("theta")
        assert (2 - theta).bind_value(0.75) == 2 - 0.75
        assert (-theta).bind_value(0.75) == -0.75
        assert (+theta).bind_value(0.75) == 0.75
        assert (3 * theta).bind_value(0.2) == 3 * 0.2

    def test_symbolic_times_symbolic_rejected(self):
        theta, phi = Parameter("theta"), Parameter("phi")
        with pytest.raises(CircuitError):
            theta * phi
        with pytest.raises(CircuitError):
            theta + phi
        with pytest.raises(CircuitError):
            theta / 0

    def test_float_coercion_raises_qa105(self):
        with pytest.raises(CircuitError, match=r"\[QA105\]"):
            float(Parameter("theta"))
        with pytest.raises(CircuitError, match=r"\[QA105\]"):
            float(Parameter("theta") * 2)

    def test_is_symbolic_and_parameter_of(self):
        theta = Parameter("theta")
        assert is_symbolic(theta)
        assert is_symbolic(theta + 1)
        assert not is_symbolic(1.5)
        assert (theta + 1).parameter == theta

    def test_coefficients_affine_presentation(self):
        theta = Parameter("theta")
        coeff, offset = ((theta * 2 + 1) / 4).coefficients()
        assert coeff == pytest.approx(0.5)
        assert offset == pytest.approx(0.25)

    def test_pickle_round_trip(self):
        theta = Parameter("theta")
        expr = theta / 2 + 0.75
        assert pickle.loads(pickle.dumps(theta)) == theta
        clone = pickle.loads(pickle.dumps(expr))
        assert isinstance(clone, ParameterExpression)
        assert clone == expr
        assert clone.bind_value(1.25) == expr.bind_value(1.25)

    def test_params_json_round_trip(self):
        theta = Parameter("theta")
        params = (0.5, theta, theta * 3 - 1.0)
        decoded = params_from_json(params_to_json(params))
        assert decoded == params
        assert decoded[2].bind_value(0.2) == params[2].bind_value(0.2)

    def test_params_json_rejects_malformed(self):
        with pytest.raises(ValueError):
            params_from_json([{"wrong": "shape"}])

    def test_bind_parameter_helper(self):
        theta = Parameter("theta")
        assert bind_parameter(theta / 2, {"theta": 1.0}) == 0.5
        assert bind_parameter(0.25, {"theta": 1.0}) == 0.25
        with pytest.raises(CircuitError):
            bind_parameter(theta, {})


class TestCircuitBinding:
    def test_parameters_discovery_order_and_dedup(self):
        qc = sweep_template()
        assert [p.name for p in qc.parameters] == ["theta"]
        assert qc.num_parameters == 1
        assert qc.is_parameterized()
        assert not concrete_sweep(0.5).is_parameterized()

    def test_multi_parameter_first_appearance_order(self):
        a, b = Parameter("alpha"), Parameter("beta")
        qc = QuantumCircuit(2)
        qc.rz(b, 0)
        qc.ry(a, 1)
        qc.rz(b / 2, 1)
        assert [p.name for p in qc.parameters] == ["beta", "alpha"]

    @pytest.mark.parametrize("value", SWEEP_POINTS)
    def test_bind_bit_identical_to_concrete_build(self, value):
        bound = sweep_template().bind({"theta": value})
        concrete = concrete_sweep(value)
        assert list(bound) == list(concrete)

    def test_bind_validation(self):
        qc = sweep_template()
        with pytest.raises(CircuitError, match="missing"):
            qc.bind({})
        with pytest.raises(CircuitError, match="unknown"):
            qc.bind({"theta": 0.5, "phi": 1.0})
        qc.bind({"theta": 0.5, "phi": 1.0}, allow_unused=True)
        with pytest.raises(CircuitError, match="non-finite"):
            qc.bind({"theta": math.inf})
        with pytest.raises(CircuitError, match="not a number"):
            qc.bind({"theta": "soon"})

    def test_bind_accepts_parameter_keys(self):
        theta = Parameter("theta")
        qc = QuantumCircuit(1)
        qc.ry(theta, 0)
        assert qc.bind({theta: 0.5})._instructions[0].params == (0.5,)

    def test_provenance_stamped_and_not_copied(self):
        template = sweep_template()
        bound = template.bind({"theta": 0.5})
        provenance = bound._bound_from
        assert isinstance(provenance, BoundProvenance)
        assert provenance.template is template
        assert provenance.matches(bound)
        assert provenance.mapping == {"theta": 0.5}
        # A structural copy is a new circuit: provenance must not leak to it,
        # where later mutation would silently desynchronise template & copy.
        assert bound.copy()._bound_from is None

    def test_unbound_matrix_and_execution_guards(self):
        qc = QuantumCircuit(1)
        qc.ry(Parameter("theta"), 0)
        with pytest.raises(GateError, match=r"\[QA105\]"):
            qc._instructions[0].matrix()


class TestAnalysisLayer:
    def test_qa105_registered_as_error(self):
        severity, _ = DIAGNOSTIC_CODES["QA105"]
        assert severity == "error"

    def test_unbound_parameter_errors_stream(self):
        qc = sweep_template()
        diags = unbound_parameter_errors(qc)
        assert diags and all(d.code == "QA105" for d in diags)
        assert all("theta" in d.message for d in diags)
        assert unbound_parameter_errors(qc.bind({"theta": 0.3})) == []

    def test_analyze_circuit_does_not_emit_qa105(self):
        # Unbound templates are legitimate *static* artifacts: QA105 is an
        # execution-boundary refusal, not a lint of the template itself.
        analysis = analyze_circuit(sweep_template())
        assert not any(d.code == "QA105" for d in analysis.diagnostics)

    def test_facts_record_parameter_signature(self):
        facts = circuit_facts(sweep_template())
        assert facts.parameters == ("theta",)
        assert facts.is_parameterized
        bound_facts = circuit_facts(sweep_template().bind({"theta": 0.3}))
        assert bound_facts.parameters == ()

    def test_bound_circuits_share_template_structure_fingerprint(self):
        template = sweep_template()
        fp = structure_fingerprint(template)
        points = [template.bind({"theta": v}) for v in (0.1, 0.2, 0.3)]
        assert {structure_fingerprint(qc) for qc in points} == {fp}

    def test_result_cache_keys_distinguish_bindings(self):
        template = sweep_template()
        a = circuit_fingerprint(template.bind({"theta": 0.1}))
        b = circuit_fingerprint(template.bind({"theta": 0.2}))
        a2 = circuit_fingerprint(template.bind({"theta": 0.1}))
        assert a != b
        assert a == a2


class TestExecutionRefusal:
    @pytest.mark.parametrize("validate", ["off", "warn", "strict"])
    def test_unbound_rejected_in_every_validate_mode(self, validate):
        svc = ExecutionService(validate=validate)
        with svc.stats_scope() as scope:
            with pytest.raises(ValidationError, match=r"unbound symbolic"):
                svc.run(sweep_template(), backend="ideal", shots=16, seed=1)
        assert scope.get("rejected_unbound") == 1
        assert svc.stats()["rejected_unbound"] == 1

    def test_mixed_batch_counts_each_offender(self):
        svc = ExecutionService()
        batch = [sweep_template(), concrete_sweep(0.3), sweep_template()]
        with pytest.raises(ValidationError, match="2 of 3"):
            svc.run(batch, backend="ideal", shots=16, seed=1)
        assert svc.stats()["rejected_unbound"] == 2

    def test_bound_circuit_passes_preflight(self):
        svc = ExecutionService(validate="strict")
        bound = sweep_template().bind({"theta": 0.4})
        counts = (
            svc.run(bound, backend="ideal", shots=64, seed=5)
            .result()
            .get_counts()
        )
        assert sum(counts.values()) == 64


class TestExecutionParity:
    @pytest.mark.parametrize("executor", ["thread", "process", "batch"])
    def test_counts_bit_identical_to_concrete_on_every_executor(
        self, executor
    ):
        kwargs = {"max_workers": 2} if executor == "process" else {}
        svc_bound = ExecutionService(executor=executor, **kwargs)
        svc_concrete = ExecutionService(executor=executor, **kwargs)
        template = sweep_template()
        points = SWEEP_POINTS[:6]
        bound = [template.bind({"theta": v}) for v in points]
        concrete = [concrete_sweep(v) for v in points]
        res_bound = svc_bound.run(
            bound, backend="ideal", shots=256, seed=11
        ).result()
        res_concrete = svc_concrete.run(
            concrete, backend="ideal", shots=256, seed=11
        ).result()
        for i in range(len(points)):
            assert res_bound.get_counts(i) == res_concrete.get_counts(i)

    def test_sweep_costs_one_transpile_and_one_batch_group(self):
        svc = ExecutionService(executor="batch")
        template = sweep_template()
        points = [0.05 * k for k in range(100)]
        with svc.stats_scope() as scope:
            lowered = [
                svc.transpile(
                    template.bind({"theta": v}), basis_gates=ROTATION_BASIS
                )
                for v in points
            ]
            job = svc.run(lowered, backend="ideal", shots=32, seed=3)
        counts = scope.as_dict()
        assert counts["transpiles"] == 1
        assert counts["transpile_cache_hits"] == len(points) - 1
        assert counts["batch_groups"] == 1
        assert counts["simulations_batched"] == len(points)
        # The sweep is bit-identical to 100 concretely-built circuits pushed
        # through the same stages on a fresh service.
        reference_svc = ExecutionService(executor="batch")
        reference = reference_svc.run(
            [
                reference_svc.transpile(
                    concrete_sweep(v), basis_gates=ROTATION_BASIS
                )
                for v in points
            ],
            backend="ideal", shots=32, seed=3,
        ).result()
        swept = job.result()
        for i in range(len(points)):
            assert swept.get_counts(i) == reference.get_counts(i)

    def test_bound_fast_path_commutes_with_direct_transpile(self):
        svc = ExecutionService()
        template = sweep_template()
        v = 0.1 * 3  # deliberately not representable as a clean literal
        via_template = svc.transpile(
            template.bind({"theta": v}), basis_gates=ROTATION_BASIS
        )
        direct = ExecutionService().transpile(
            concrete_sweep(v), basis_gates=ROTATION_BASIS
        )
        assert list(via_template) == list(direct)

    def test_default_basis_falls_back_per_point_but_stays_correct(self):
        # The default basis has no ry, so the symbolic template cannot be
        # lowered once (ZYZ resynthesis needs concrete angles).  The service
        # must negative-cache the template and transpile each point — slower,
        # never wrong.
        svc = ExecutionService()
        template = sweep_template()
        points = (0.3, 0.7)
        with svc.stats_scope() as scope:
            outs = [svc.transpile(template.bind({"theta": v})) for v in points]
        assert scope.get("transpiles") == 2
        for v, out in zip(points, outs):
            reference = ExecutionService().transpile(concrete_sweep(v))
            assert list(out) == list(reference)

    def test_symbolic_template_transpile_refused_without_basis_support(self):
        svc = ExecutionService()
        qc = QuantumCircuit(1)
        qc.ry(Parameter("theta"), 0)
        with pytest.raises(TranspilerError, match="symbolic"):
            svc.transpile(qc)


class TestQasmRoundTrip:
    def test_parameterized_gates_round_trip(self):
        qc = sweep_template()
        text = circuit_to_qasm(qc)
        assert "ry(theta) q[0];" in text
        assert "rz(0.5*theta) q[1];" in text
        back = qasm_to_circuit(text)
        assert [p.name for p in back.parameters] == ["theta"]
        for v in (0.3, -1.25):
            assert list(back.bind({"theta": v})) == list(qc.bind({"theta": v}))

    def test_expression_forms_parse(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\n"
            "rz(2.0*theta-1.5) q[0];\n"
            "ry(-theta) q[0];\n"
            "rz(theta/4+pi) q[0];\n"
        )
        qc = qasm_to_circuit(text)
        bound = qc.bind({"theta": 0.8})
        assert bound._instructions[0].params == (2.0 * 0.8 - 1.5,)
        assert bound._instructions[1].params == (-0.8,)
        assert bound._instructions[2].params == (0.8 / 4 + math.pi,)

    def test_symbolic_products_rejected(self):
        text = (
            'OPENQASM 2.0;\ninclude "qelib1.inc";\n'
            "qreg q[1];\n"
            "rz(theta*phi) q[0];\n"
        )
        with pytest.raises(QasmError):
            qasm_to_circuit(text)
