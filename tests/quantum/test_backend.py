"""Backend API: run/job/result, validation, fake devices."""

import pytest

from repro.errors import BackendError
from repro.quantum.backend import (
    FakeBrisbane,
    FakeFalcon,
    LocalSimulator,
    NoisySimulator,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.library import bell_pair, ghz_state
from repro.quantum.noise import NoiseModel
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import transpile


class TestRunAPI:
    def test_job_result_counts(self, simulator):
        job = simulator.run(bell_pair(measure=True), shots=100, seed=1)
        assert job.status() == "DONE"
        counts = job.result().get_counts()
        assert sum(counts.values()) == 100

    def test_multiple_circuits(self, simulator):
        qcs = [bell_pair(measure=True), ghz_state(3, measure=True)]
        result = simulator.run(qcs, shots=50, seed=2).result()
        assert sum(result.get_counts(0).values()) == 50
        assert set(result.get_counts(1)) <= {"000", "111"}

    def test_counts_index_out_of_range(self, simulator):
        result = simulator.run(bell_pair(measure=True), shots=10, seed=3).result()
        with pytest.raises(BackendError):
            result.get_counts(1)

    def test_memory_requires_flag(self, simulator):
        result = simulator.run(bell_pair(measure=True), shots=10, seed=4).result()
        with pytest.raises(BackendError, match="memory=True"):
            result.get_memory()

    def test_memory_index_out_of_range(self, simulator):
        result = simulator.run(
            bell_pair(measure=True), shots=10, seed=4, memory=True
        ).result()
        with pytest.raises(BackendError, match="out of range"):
            result.get_memory(1)

    def test_memory_returned(self, simulator):
        result = simulator.run(
            bell_pair(measure=True), shots=10, seed=4, memory=True
        ).result()
        assert len(result.get_memory()) == 10

    def test_probabilities(self, simulator):
        result = simulator.run(bell_pair(measure=True), shots=1000, seed=5).result()
        probs = result.get_probabilities()
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_determinism(self, simulator):
        a = simulator.run(bell_pair(measure=True), shots=100, seed=6).result()
        b = simulator.run(bell_pair(measure=True), shots=100, seed=6).result()
        assert a.get_counts() == b.get_counts()

    def test_empty_circuit_list_rejected(self, simulator):
        with pytest.raises(BackendError):
            simulator.run([])

    def test_non_circuit_rejected(self, simulator):
        with pytest.raises(BackendError, match="QuantumCircuit"):
            simulator.run("not a circuit")

    def test_bad_shots(self, simulator):
        with pytest.raises(BackendError):
            simulator.run(bell_pair(measure=True), shots=0)


class TestValidation:
    def test_coupling_violation_tells_user_to_transpile(self):
        backend = FakeFalcon()
        qc = QuantumCircuit(3, 3)
        qc.cx(0, 2)  # 0-2 not coupled on the T topology
        qc.measure([0, 1, 2], [0, 1, 2])
        with pytest.raises(BackendError, match="transpile"):
            backend.run(qc)

    def test_basis_violation_tells_user_to_transpile(self):
        backend = FakeFalcon()
        qc = QuantumCircuit(1, 1)
        qc.h(0)  # h is not in the device basis
        qc.measure(0, 0)
        with pytest.raises(BackendError, match="transpile"):
            backend.run(qc)

    def test_qubit_index_beyond_device(self):
        backend = FakeFalcon()
        qc = QuantumCircuit(8, 1)
        qc.x(7)
        qc.measure(7, 0)
        with pytest.raises(BackendError, match="has 5 qubits"):
            backend.run(qc)

    def test_empty_circuit_wider_than_device_accepted(self):
        # An empty circuit touches no qubits, so its declared width must not
        # be validated against the device (regression: the old fallback
        # compared num_qubits - 1 against the backend width).
        backend = FakeFalcon()
        counts = backend.run(QuantumCircuit(8, 1), shots=5, seed=1).result().get_counts()
        assert sum(counts.values()) == 5

    def test_transpiled_circuit_accepted(self):
        backend = FakeFalcon()
        tqc = transpile(ghz_state(3, measure=True), backend=backend)
        counts = backend.run(tqc, shots=500, seed=7).result().get_counts()
        top_two = sorted(counts.items(), key=lambda kv: -kv[1])[:2]
        assert {k for k, _ in top_two} == {"000", "111"}


class TestFakeDevices:
    def test_brisbane_shape(self):
        backend = FakeBrisbane()
        assert backend.num_qubits == 127
        assert backend.coupling_map is not None
        assert backend.coupling_map.is_connected()
        assert backend.noise_model is not None

    def test_brisbane_runs_noisily(self):
        backend = FakeBrisbane()
        tqc = transpile(bell_pair(measure=True), backend=backend)
        counts = backend.run(tqc, shots=2000, seed=8).result().get_counts()
        # Noise spreads mass beyond the two Bell outcomes.
        assert counts.get("00", 0) + counts.get("11", 0) < 2000

    def test_falcon_topology(self):
        backend = FakeFalcon()
        assert backend.coupling_map.edges == [(0, 1), (1, 2), (1, 3), (3, 4)]

    def test_noisy_simulator_default_width(self):
        model = NoiseModel.uniform_depolarizing(1e-3, 1e-2)
        backend = NoisySimulator(model, CouplingMap.grid(2, 3))
        assert backend.num_qubits == 6

    def test_local_simulator_accepts_wide_sparse(self):
        qc = QuantumCircuit(127, 1)
        qc.x(100)
        qc.measure(100, 0)
        counts = LocalSimulator().run(qc, shots=10, seed=9).result().get_counts()
        assert counts == {"1": 10}
