"""Scoped execution-stats attribution: exact under concurrency.

The regression target: per-caller ``execution_stats`` used to be computed by
diffing the *global* ``service.stats()`` before/after, which attributed every
concurrent user's work to everyone.  A :class:`StatsScope` must receive
exactly the increments caused by work initiated under it — synchronous,
asynchronous, cross-thread, and via the sandbox.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.agents.sandbox import run_code
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    CacheLimits,
    ExecutionService,
    StatsScope,
    set_default_service,
    stats_scope,
    use_scope,
)
from repro.quantum.execution.scopes import SCOPE_FIELDS, active_scopes, credit


def bell(phase: float = 0.0) -> QuantumCircuit:
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    if phase:
        qc.rz(phase, 1)
    qc.measure(0, 0)
    qc.measure(1, 1)
    return qc


@pytest.fixture
def service():
    svc = ExecutionService(max_workers=2)
    yield svc
    svc.shutdown()


class TestScopeBasics:
    def test_sync_run_attribution(self, service):
        with service.stats_scope() as scope:
            service.run(bell(), backend="local_simulator", shots=64, seed=1)
        counts = scope.as_dict()
        assert counts["simulations"] == 1
        assert counts["cache_misses"] == 1
        assert counts["cache_hits"] == 0
        # A repeat under a new scope is a pure cache hit.
        with service.stats_scope() as scope2:
            service.run(bell(), backend="local_simulator", shots=64, seed=1)
        assert scope2.as_dict()["cache_hits"] == 1
        assert scope2.as_dict()["simulations"] == 0

    def test_async_submit_credits_submitting_scope(self, service):
        with service.stats_scope() as scope:
            job = service.submit(
                [bell(), bell(0.25)], backend="local_simulator", shots=64, seed=2
            )
            job.result(timeout=30)
        counts = scope.as_dict()
        assert counts["simulations"] == 2
        assert counts["cache_misses"] == 2

    def test_work_outside_scope_not_counted(self, service):
        service.run(bell(0.5), backend="local_simulator", shots=64, seed=3)
        with service.stats_scope() as scope:
            pass
        assert all(v == 0 for v in scope.as_dict().values())

    def test_nested_scopes_both_credited(self, service):
        with service.stats_scope() as outer:
            with service.stats_scope() as inner:
                service.run(bell(0.75), backend="local_simulator", shots=64, seed=4)
            service.run(bell(0.85), backend="local_simulator", shots=64, seed=4)
        assert inner.as_dict()["simulations"] == 1
        assert outer.as_dict()["simulations"] == 2

    def test_scope_fields_and_helpers(self):
        scope = StatsScope("demo")
        scope.add("simulations", 3)
        scope.add("not_a_field", 5)  # ignored
        scope.merge({"cache_hits": 2, "junk": 9})
        assert scope.get("simulations") == 3
        assert scope.as_dict()["cache_hits"] == 2
        assert set(scope.as_dict()) == set(SCOPE_FIELDS)
        assert "demo" in repr(scope)
        credit((scope,), "cache_misses", 0)  # zero credit is a no-op
        assert scope.get("cache_misses") == 0

    def test_reentrant_use_scope_credits_once(self, service):
        scope = StatsScope("reentrant")
        with use_scope(scope), use_scope(scope):
            service.run(bell(1.25), backend="local_simulator", shots=64, seed=6)
        # Entering an already-active scope is a no-op, not a double-credit.
        assert scope.get("simulations") == 1
        assert scope not in active_scopes()

    def test_use_scope_activates_on_other_thread(self, service):
        scope = StatsScope("cross-thread")

        def work():
            with use_scope(scope):
                service.run(bell(1.5), backend="local_simulator", shots=64, seed=5)

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert scope.get("simulations") == 1
        # The scope is not active on this thread.
        assert scope not in active_scopes()


class TestConcurrentAttribution:
    def test_two_scopes_partition_exactly(self, service):
        """Concurrent users never bleed counters into each other."""
        circuits_a = [bell(0.1 * i) for i in range(6)]
        circuits_b = [bell(1 + 0.1 * i) for i in range(6)]
        scope_a = StatsScope("a")
        scope_b = StatsScope("b")

        def run_under(scope, circuits, seed):
            with use_scope(scope):
                job = service.submit(
                    circuits, backend="local_simulator", shots=64, seed=seed
                )
                job.result(timeout=30)

        before = service.stats()
        with ThreadPoolExecutor(2) as pool:
            fa = pool.submit(run_under, scope_a, circuits_a, 10)
            fb = pool.submit(run_under, scope_b, circuits_b, 11)
            fa.result()
            fb.result()
        after = service.stats()
        a, b = scope_a.as_dict(), scope_b.as_dict()
        # Each scope saw exactly its own lookups...
        assert a["cache_hits"] + a["cache_misses"] == 6
        assert b["cache_hits"] + b["cache_misses"] == 6
        # ...and the scoped counters partition the global deltas exactly.
        for key in ("simulations", "simulations_deduped", "cache_hits",
                    "cache_misses"):
            global_delta = int(after[key]) - int(before[key])
            assert a[key] + b[key] == global_delta, key

    def test_shared_key_sim_or_dedup_partitions(self, service):
        """Two scopes racing on one cache key: one sims, totals stay exact."""
        scope_a = StatsScope("a")
        scope_b = StatsScope("b")
        qc = bell(2.5)

        def run_under(scope):
            with use_scope(scope):
                service.run(qc, backend="local_simulator", shots=64, seed=12)

        before = service.stats()
        with ThreadPoolExecutor(2) as pool:
            list(pool.map(run_under, [scope_a, scope_b]))
        after = service.stats()
        a, b = scope_a.as_dict(), scope_b.as_dict()
        sims = int(after["simulations"]) - int(before["simulations"])
        dedup = (
            int(after["simulations_deduped"])
            - int(before["simulations_deduped"])
        )
        hits = int(after["cache_hits"]) - int(before["cache_hits"])
        assert a["simulations"] + b["simulations"] == sims
        assert a["simulations_deduped"] + b["simulations_deduped"] == dedup
        assert a["cache_hits"] + b["cache_hits"] == hits
        # However the race resolved, both callers' outcomes are covered.
        assert sims + dedup + hits == 2


class TestEvictionAttribution:
    def test_disk_evictions_credit_the_writer(self, tmp_path):
        service = ExecutionService(
            cache_dir=tmp_path, cache_limits=CacheLimits(max_entries=2)
        )
        try:
            with service.stats_scope() as scope:
                for i in range(5):
                    service.run(
                        bell(0.2 * i + 0.01),
                        backend="local_simulator",
                        shots=32,
                        seed=20,
                    )
            assert scope.as_dict()["cache_evictions"] >= 3
            assert scope.as_dict()["cache_evictions"] == service.cache.disk.evictions
        finally:
            service.shutdown()


class TestSandboxAttribution:
    def test_run_code_counts_only_its_own_sims(self):
        service = ExecutionService(max_workers=2)
        set_default_service(service)
        try:
            stop = threading.Event()

            def background_noise():
                i = 0
                while not stop.is_set() and i < 50:
                    service.run(
                        bell(3 + 0.01 * i),
                        backend="local_simulator",
                        shots=16,
                        seed=30 + i,
                    )
                    i += 1

            noise = threading.Thread(target=background_noise)
            noise.start()
            try:
                code = (
                    "from repro.quantum.backend import LocalSimulator\n"
                    "from repro.quantum.circuit import QuantumCircuit\n"
                    "qc = QuantumCircuit(1, 1)\n"
                    "qc.h(0)\n"
                    "qc.measure(0, 0)\n"
                    "counts = LocalSimulator().run(qc, shots=32).result()"
                    ".get_counts()\n"
                )
                result = run_code(code)
                assert result.ok, result.trace
                # Exactly one execution is attributable to the program, no
                # matter how much the background thread is simulating.
                assert result.simulations + result.sim_cache_hits == 1
            finally:
                stop.set()
                noise.join()
        finally:
            set_default_service(None, shutdown_previous=True)

    def test_concurrent_sandboxes_keep_their_stdout(self):
        """Thread-local stdout capture: parallel programs don't steal output."""
        def program(tag):
            return f"print('tag-{tag}')\n"

        with ThreadPoolExecutor(4) as pool:
            results = list(pool.map(run_code, [program(i) for i in range(8)]))
        for i, result in enumerate(results):
            assert result.ok
            assert result.stdout == f"tag-{i}\n"

    def test_stdout_proxy_delegates_stream_attributes(self, capsys):
        """The installed proxy must not degrade sys.stdout for later code."""
        import sys

        run_code("print('hello')\n")
        # Outside a capture, attribute lookups reach the real stream: the
        # proxy must not shadow encoding/isatty/writable with io defaults.
        assert sys.stdout.writable()
        sys.stdout.isatty()  # delegates without raising
        print("after-sandbox")  # plain printing still works end-to-end
        assert "after-sandbox" in capsys.readouterr().out


class TestFoldCounts:
    def test_folds_snapshots_including_cross_host_shapes(self):
        from repro.quantum.execution.scopes import fold_counts

        folded = fold_counts(
            [
                {"simulations": 2, "cache_hits": 1},
                # A remote worker's snapshot: JSON round-trip may carry
                # extra/missing fields — ignored and zero-filled.
                {"simulations": 1, "cache_misses": 3, "unknown_field": 9},
                {},
            ]
        )
        assert folded["simulations"] == 3
        assert folded["cache_hits"] == 1
        assert folded["cache_misses"] == 3
        assert "unknown_field" not in folded
        assert set(folded) == set(SCOPE_FIELDS)

    def test_empty_fold_is_all_zero(self):
        from repro.quantum.execution.scopes import fold_counts

        assert fold_counts([]) == dict.fromkeys(SCOPE_FIELDS, 0)
