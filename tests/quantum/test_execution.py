"""The unified execution subsystem: registry, job lifecycle, batching, cache."""

import threading

import pytest

from repro.errors import BackendError, SimulationError
from repro.quantum.backend import Backend, FakeFalcon, LocalSimulator
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    BackendProvider,
    ExecutionService,
    JobStatus,
    ResultCache,
    ambient_seed,
    circuit_fingerprint,
    default_service,
    get_backend,
    list_backends,
    provider,
    resolve_backend,
    set_default_service,
)
from repro.quantum.library import bell_pair


def _tagged_circuit(tag: int, width: int = 3) -> QuantumCircuit:
    """A circuit whose deterministic output bitstring encodes ``tag``."""
    qc = QuantumCircuit(width, width)
    for bit in range(width):
        if (tag >> bit) & 1:
            qc.x(bit)
    qc.measure(list(range(width)), list(range(width)))
    return qc


class GatedBackend(Backend):
    """Backend whose simulation blocks until the test opens the gate."""

    def __init__(self) -> None:
        super().__init__(name="gated", num_qubits=8)
        self.gate = threading.Event()
        self.started = threading.Event()

    def execute_circuit(self, circuit, shots, seed=None, memory=False):
        self.started.set()
        assert self.gate.wait(10), "test gate never opened"
        return super().execute_circuit(circuit, shots, seed, memory)


class ExplodingBackend(Backend):
    def __init__(self) -> None:
        super().__init__(name="exploding", num_qubits=8)

    def execute_circuit(self, circuit, shots, seed=None, memory=False):
        raise SimulationError("boom")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_names(self):
        names = list_backends()
        assert {"local_simulator", "fake_brisbane", "fake_falcon"} <= set(names)

    def test_lookup_is_memoised(self):
        assert get_backend("fake_brisbane") is get_backend("fake_brisbane")

    def test_aliases_resolve_to_same_instance(self):
        assert get_backend("brisbane") is get_backend("fake_brisbane")
        assert get_backend("ideal") is get_backend("local_simulator")
        assert get_backend("falcon") is get_backend("fake_falcon")

    def test_lookup_is_case_insensitive(self):
        assert get_backend("Fake_Brisbane") is get_backend("fake_brisbane")

    def test_fresh_instance_bypasses_memo(self):
        assert get_backend("local_simulator", fresh=True) is not get_backend(
            "local_simulator"
        )

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(BackendError, match="fake_brisbane"):
            get_backend("fake_brisban")

    def test_unknown_name_lists_registered(self):
        with pytest.raises(BackendError, match="registered"):
            get_backend("definitely-not-a-backend")

    def test_register_factory_and_alias(self):
        registry = BackendProvider()
        registry.register("mine", LocalSimulator, aliases=("also-mine",))
        assert registry.get("mine") is registry.get("also-mine")
        assert registry.aliases_of("mine") == ["also-mine"]

    def test_register_instance(self):
        registry = BackendProvider()
        backend = LocalSimulator()
        registry.register("inst", backend)
        assert registry.get("inst") is backend

    def test_duplicate_registration_rejected(self):
        registry = BackendProvider()
        registry.register("mine", LocalSimulator)
        with pytest.raises(BackendError, match="already registered"):
            registry.register("mine", LocalSimulator)
        registry.register("mine", LocalSimulator, overwrite=True)

    def test_alias_collision_rejected_atomically(self):
        registry = BackendProvider()
        registry.register("a", LocalSimulator, aliases=("shared",))
        with pytest.raises(BackendError):
            registry.register("b", LocalSimulator, aliases=("fine", "shared"))
        # The rejected registration must leave no trace behind.
        assert "b" not in registry.names()
        with pytest.raises(BackendError):
            registry.resolve_name("fine")
        registry.register("b", LocalSimulator, aliases=("fine",))
        assert registry.get("fine") is registry.get("b")

    def test_unregister(self):
        registry = BackendProvider()
        registry.register("gone", LocalSimulator, aliases=("bye",))
        registry.unregister("gone")
        with pytest.raises(BackendError):
            registry.resolve_name("bye")

    def test_global_register_backend_roundtrip(self):
        from repro.quantum.execution import register_backend

        register_backend("test-temp-backend", LocalSimulator)
        try:
            assert get_backend("test-temp-backend").name == "local_simulator"
        finally:
            provider().unregister("test-temp-backend")

    def test_resolve_backend_coercions(self):
        backend = FakeFalcon()
        assert resolve_backend(backend) is backend
        assert resolve_backend(None).name == "local_simulator"
        assert resolve_backend("brisbane").name == "fake_brisbane"
        with pytest.raises(BackendError, match="expected a Backend"):
            resolve_backend(42)


# ---------------------------------------------------------------------------
# Job lifecycle
# ---------------------------------------------------------------------------


class TestJobLifecycle:
    def test_queued_running_done(self):
        backend = GatedBackend()
        service = ExecutionService(max_workers=1)
        try:
            job = service.submit(bell_pair(measure=True), backend=backend, shots=20)
            assert backend.started.wait(10)
            assert job.status() is JobStatus.RUNNING
            assert not job.done()
            backend.gate.set()
            result = job.result(timeout=10)
            assert job.status() is JobStatus.DONE
            assert job.done()
            assert sum(result.get_counts().values()) == 20
        finally:
            backend.gate.set()
            service.shutdown()

    def test_result_timeout_raises(self):
        backend = GatedBackend()
        service = ExecutionService(max_workers=1)
        try:
            job = service.submit(bell_pair(measure=True), backend=backend, shots=10)
            with pytest.raises(BackendError, match="did not finish"):
                job.result(timeout=0.05)
        finally:
            backend.gate.set()
            service.shutdown()

    def test_cancel_queued_job(self):
        backend = GatedBackend()
        service = ExecutionService(max_workers=1)
        try:
            blocker = service.submit(
                bell_pair(measure=True), backend=backend, shots=10
            )
            assert backend.started.wait(10)
            queued = service.submit(
                bell_pair(measure=True), backend=backend, shots=10
            )
            assert queued.status() is JobStatus.QUEUED
            assert queued.cancel()
            assert queued.status() is JobStatus.CANCELLED
            assert queued.cancelled()
            with pytest.raises(BackendError, match="cancelled"):
                queued.result(timeout=1)
            backend.gate.set()
            blocker.result(timeout=10)
            assert not blocker.cancel()  # terminal jobs cannot be cancelled
        finally:
            backend.gate.set()
            service.shutdown()

    def test_error_lifecycle(self):
        service = ExecutionService(max_workers=1)
        try:
            job = service.submit(
                bell_pair(measure=True), backend=ExplodingBackend(), shots=10
            )
            job.wait(10)
            assert job.status() is JobStatus.ERROR
            assert isinstance(job.error(), SimulationError)
            with pytest.raises(SimulationError, match="boom"):
                job.result(timeout=1)
        finally:
            service.shutdown()

    def test_job_ids_unique(self):
        service = ExecutionService(max_workers=2)
        try:
            jobs = [
                service.submit(bell_pair(measure=True), shots=10, seed=i)
                for i in range(4)
            ]
            assert len({job.job_id for job in jobs}) == 4
            for job in jobs:
                job.result(timeout=10)
        finally:
            service.shutdown()

    def test_submit_validates_eagerly(self):
        service = ExecutionService(max_workers=1)
        try:
            with pytest.raises(BackendError, match="shots"):
                service.submit(bell_pair(measure=True), shots=0)
            with pytest.raises(BackendError, match="no circuits"):
                service.submit([])
            with pytest.raises(BackendError, match="QuantumCircuit"):
                service.submit("not a circuit")
            bad = QuantumCircuit(3, 3)
            bad.cx(0, 2)  # uncoupled pair on the falcon T topology
            with pytest.raises(BackendError, match="transpile"):
                service.submit(bad, backend="fake_falcon")
        finally:
            service.shutdown()

    def test_backend_run_shim_returns_finished_job(self, simulator):
        job = simulator.run(bell_pair(measure=True), shots=50, seed=3)
        assert job.status() is JobStatus.DONE
        assert job.status() == "DONE"  # legacy string comparison still works
        assert sum(job.result().get_counts().values()) == 50


# ---------------------------------------------------------------------------
# Batching
# ---------------------------------------------------------------------------


class TestBatching:
    def test_batch_preserves_submission_order(self):
        service = ExecutionService(max_workers=4)
        try:
            tags = [5, 0, 7, 2, 6, 1]
            circuits = [_tagged_circuit(tag) for tag in tags]
            result = service.submit(circuits, shots=10, seed=1).result(timeout=30)
            for index, tag in enumerate(tags):
                expected = format(tag, "03b")
                assert result.get_counts(index) == {expected: 10}
        finally:
            service.shutdown()

    def test_batch_first_circuit_matches_single_run(self):
        service = ExecutionService(max_workers=2, use_cache=False)
        try:
            qc = bell_pair(measure=True)
            single = service.run(qc, shots=200, seed=11).result().get_counts()
            batched = service.submit([qc, _tagged_circuit(1)], shots=200, seed=11)
            assert batched.result(timeout=30).get_counts(0) == single
        finally:
            service.shutdown()

    def test_batch_result_metadata(self):
        service = ExecutionService(max_workers=2)
        try:
            job = service.submit(
                [_tagged_circuit(1), _tagged_circuit(2)],
                backend="local_simulator",
                shots=10,
                seed=2,
            )
            result = job.result(timeout=30)
            assert job.num_circuits == 2
            assert result.backend_name == "local_simulator"
            assert result.shots == 10
            assert result.seed == 2
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


class TestCache:
    def test_repeat_run_hits_cache(self):
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            first = service.run(qc, shots=100, seed=6).result().get_counts()
            second = service.run(qc, shots=100, seed=6).result().get_counts()
            assert first == second
            stats = service.stats()
            assert stats["simulations"] == 1
            assert stats["cache_hits"] == 1
            assert stats["cache_misses"] == 1
        finally:
            service.shutdown()

    def test_submit_fully_cached_batch_skips_pool(self):
        service = ExecutionService(max_workers=1)
        try:
            circuits = [_tagged_circuit(1), _tagged_circuit(2)]
            service.submit(circuits, shots=10, seed=3).result(timeout=30)
            job = service.submit(circuits, shots=10, seed=3)
            # No pool round-trip needed: the job completes inside submit().
            assert job.status() is JobStatus.DONE
            assert job.cache_hits == 2
            assert service.stats()["simulations"] == 2
        finally:
            service.shutdown()

    def test_cache_key_discriminates(self):
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            service.run(qc, shots=100, seed=6)
            service.run(qc, shots=100, seed=7)      # different seed
            service.run(qc, shots=200, seed=6)      # different shots
            service.run(qc, shots=100, seed=6, memory=True)  # memory flag
            assert service.stats()["simulations"] == 4
            service.run(qc, backend="noisy", shots=100, seed=6)  # noisy backend
            assert service.stats()["simulations"] == 5
        finally:
            service.shutdown()

    def test_unseeded_runs_are_never_cached(self):
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            service.run(qc, shots=50)
            service.run(qc, shots=50)
            stats = service.stats()
            assert stats["simulations"] == 2
            assert stats["cache_hits"] == 0
        finally:
            service.shutdown()

    def test_cached_memory_roundtrip(self):
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            first = service.run(qc, shots=10, seed=4, memory=True).result()
            second = service.run(qc, shots=10, seed=4, memory=True).result()
            assert first.get_memory() == second.get_memory()
            assert service.stats()["cache_hits"] == 1
        finally:
            service.shutdown()

    def test_same_seed_identical_counts_across_services(self):
        qc = bell_pair(measure=True)
        a = ExecutionService(max_workers=1)
        b = ExecutionService(max_workers=1)
        try:
            counts_a = a.run(qc, shots=300, seed=9).result().get_counts()
            counts_b = b.run(qc, shots=300, seed=9).result().get_counts()
            assert counts_a == counts_b
        finally:
            a.shutdown()
            b.shutdown()

    def test_shim_shares_default_service_cache(self):
        service = ExecutionService(max_workers=1)
        set_default_service(service)
        try:
            qc = bell_pair(measure=True)
            a = LocalSimulator().run(qc, shots=100, seed=5).result().get_counts()
            b = LocalSimulator().run(qc, shots=100, seed=5).result().get_counts()
            assert a == b
            assert service.stats()["cache_hits"] == 1
            assert service.stats()["simulations"] == 1
        finally:
            set_default_service(None)

    def test_ambient_seed_makes_unseeded_runs_deterministic(self):
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            with ambient_seed(12):
                first = service.run(qc, shots=100).result().get_counts()
            explicit = service.run(qc, shots=100, seed=12).result().get_counts()
            assert first == explicit
            assert service.stats()["cache_hits"] == 1
        finally:
            service.shutdown()

    def test_ambient_seed_keeps_successive_runs_independent(self):
        # Two unseeded runs inside one scope are *distinct* samples (a
        # program averaging over repeated runs must not see clones), while
        # replaying the scope reproduces the same sequence.
        service = ExecutionService(max_workers=1)
        try:
            qc = bell_pair(measure=True)
            with ambient_seed(12):
                first = service.run(qc, shots=60, memory=True).result()
                second = service.run(qc, shots=60, memory=True).result()
            with ambient_seed(12):
                replay = service.run(qc, shots=60, memory=True).result()
            assert first.get_memory() != second.get_memory()
            assert replay.get_memory() == first.get_memory()
        finally:
            service.shutdown()

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        service = ExecutionService(max_workers=1, cache=cache)
        try:
            for tag in (1, 2, 3):
                service.run(_tagged_circuit(tag), shots=10, seed=1)
            assert len(cache) == 2
            service.run(_tagged_circuit(1), shots=10, seed=1)  # evicted -> miss
            assert service.stats()["simulations"] == 4
        finally:
            service.shutdown()

    def test_circuit_fingerprint_ignores_labels(self):
        a = _tagged_circuit(3)
        b = _tagged_circuit(3)
        b.name = "renamed"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(_tagged_circuit(4))


# ---------------------------------------------------------------------------
# Single-flight deduplication
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def test_concurrent_identical_jobs_simulate_once(self):
        """Regression: two in-flight jobs with one cache key used to both
        simulate; the second must wait for the first's cache fill."""
        backend = GatedBackend()
        service = ExecutionService(max_workers=2)
        try:
            qc = bell_pair(measure=True)
            first = service.submit(qc, backend=backend, shots=30, seed=5)
            second = service.submit(qc, backend=backend, shots=30, seed=5)
            assert backend.started.wait(10)
            backend.gate.set()
            counts_a = first.result(timeout=30).get_counts()
            counts_b = second.result(timeout=30).get_counts()
            assert counts_a == counts_b
            stats = service.stats()
            assert stats["simulations"] == 1
            assert stats["simulations_deduped"] == 1
            assert first.deduped + second.deduped == 1
        finally:
            backend.gate.set()
            service.shutdown()

    def test_dedup_preserves_memory_payload(self):
        backend = GatedBackend()
        service = ExecutionService(max_workers=2)
        try:
            qc = bell_pair(measure=True)
            jobs = [
                service.submit(qc, backend=backend, shots=10, seed=2, memory=True)
                for _ in range(2)
            ]
            assert backend.started.wait(10)
            backend.gate.set()
            memories = [job.result(timeout=30).get_memory() for job in jobs]
            assert memories[0] == memories[1]
            assert service.stats()["simulations"] == 1
        finally:
            backend.gate.set()
            service.shutdown()

    def test_failed_leader_lets_followers_retry(self):
        service = ExecutionService(max_workers=2)
        try:
            qc = bell_pair(measure=True)
            job = service.submit(qc, backend=ExplodingBackend(), shots=10, seed=1)
            with pytest.raises(SimulationError):
                job.result(timeout=10)
            # The key must not be stuck in the in-flight table: a later run
            # of the same key on a working backend succeeds.
            ok = service.run(qc, shots=10, seed=1).result()
            assert sum(ok.get_counts().values()) == 10
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Executor strategies
# ---------------------------------------------------------------------------


class TestExecutorStrategies:
    def test_invalid_executor_rejected(self):
        with pytest.raises(BackendError, match="executor"):
            ExecutionService(executor="goroutines")

    def test_thread_process_result_parity(self):
        qc = bell_pair(measure=True)
        threads = ExecutionService(max_workers=2, executor="thread")
        processes = ExecutionService(max_workers=2, executor="process")
        try:
            a = threads.run(qc, backend="noisy", shots=200, seed=9).result()
            b = processes.run(qc, backend="noisy", shots=200, seed=9).result()
            assert a.get_counts() == b.get_counts()
            assert threads.stats()["executor"] == "thread"
            assert processes.stats()["executor"] == "process"
        finally:
            threads.shutdown()
            processes.shutdown()

    def test_process_batch_parity_with_memory(self):
        circuits = [_tagged_circuit(tag) for tag in (3, 1, 6)]
        threads = ExecutionService(max_workers=2, executor="thread")
        processes = ExecutionService(max_workers=2, executor="process")
        try:
            a = threads.submit(
                circuits, shots=20, seed=4, memory=True
            ).result(timeout=60)
            b = processes.submit(
                circuits, shots=20, seed=4, memory=True
            ).result(timeout=60)
            for index in range(len(circuits)):
                assert a.get_counts(index) == b.get_counts(index)
                assert a.get_memory(index) == b.get_memory(index)
        finally:
            threads.shutdown()
            processes.shutdown()

    def test_unregistered_backend_falls_back_inline(self):
        """Backends the child cannot rebuild by name run in-process."""
        backend = GatedBackend()
        backend.gate.set()
        service = ExecutionService(max_workers=2, executor="process")
        try:
            job = service.submit(
                bell_pair(measure=True), backend=backend, shots=25, seed=1
            )
            assert sum(job.result(timeout=30).get_counts().values()) == 25
        finally:
            service.shutdown()

    def test_process_executor_shares_cache(self):
        service = ExecutionService(max_workers=2, executor="process")
        try:
            qc = bell_pair(measure=True)
            first = service.run(qc, shots=50, seed=8).result().get_counts()
            second = service.run(qc, shots=50, seed=8).result().get_counts()
            assert first == second
            stats = service.stats()
            assert stats["simulations"] == 1
            assert stats["cache_hits"] == 1
        finally:
            service.shutdown()


# ---------------------------------------------------------------------------
# Pipeline integration: repeated eval arm re-simulates nothing
# ---------------------------------------------------------------------------


class TestEvalIntegration:
    def test_repeat_eval_arm_issues_zero_duplicate_simulations(self):
        from repro.evalsuite import PipelineSettings, build_suite, evaluate
        from repro.llm.faults import ModelConfig

        service = ExecutionService(max_workers=2)
        set_default_service(service)
        try:
            tasks = build_suite()[:3]
            settings = PipelineSettings(
                ModelConfig("3b", fine_tuned=True), samples_per_task=1
            )
            first = evaluate(settings, tasks)
            second = evaluate(settings, tasks)
            assert first.execution_stats["simulations"] > 0
            assert second.execution_stats["simulations"] == 0
            assert second.execution_stats["cache_hits"] > 0
            assert second.accuracy() == first.accuracy()
        finally:
            set_default_service(None)

    def test_sandbox_reports_simulation_counters(self):
        from repro.agents.sandbox import run_code

        code = (
            "from repro.quantum import QuantumCircuit, LocalSimulator\n"
            "qc = QuantumCircuit(1, 1)\n"
            "qc.h(0)\n"
            "qc.measure(0, 0)\n"
            "counts = LocalSimulator().run(qc, shots=16).result().get_counts()\n"
        )
        service = ExecutionService(max_workers=1)
        set_default_service(service)
        try:
            first = run_code(code)
            assert first.ok
            assert first.simulations == 1
            second = run_code(code)  # ambient sandbox seed -> cache hit
            assert second.simulations == 0
            assert second.sim_cache_hits == 1
        finally:
            set_default_service(None)
