"""Gate registry: matrices, unitarity, inverses, aliases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GateError
from repro.quantum import gates as G

ANGLES = st.floats(min_value=-6.0, max_value=6.0, allow_nan=False)

ALL_NAMES = sorted({spec.name for spec in G.GATE_SPECS.values()})


def test_registry_contains_standard_gates():
    for name in ("x", "y", "z", "h", "s", "t", "cx", "cz", "swap", "ccx", "u"):
        assert name in G.GATE_SPECS


def test_aliases_resolve_to_same_spec():
    assert G.get_spec("cnot") is G.get_spec("cx")
    assert G.get_spec("phase") is G.get_spec("p")
    assert G.get_spec("cphase") is G.get_spec("cp")


def test_case_insensitive_lookup():
    assert G.get_spec("CX").name == "cx"
    assert G.get_spec("H").name == "h"


def test_unknown_gate_raises():
    with pytest.raises(GateError, match="unknown gate"):
        G.get_spec("frobnicate")


def test_wrong_param_count_raises():
    with pytest.raises(GateError, match="parameter"):
        G.gate_matrix("rx", ())
    with pytest.raises(GateError, match="parameter"):
        G.gate_matrix("h", (1.0,))


@pytest.mark.parametrize("name", ALL_NAMES)
def test_every_gate_matrix_is_unitary(name):
    spec = G.GATE_SPECS[name]
    params = tuple(0.37 * (i + 1) for i in range(spec.num_params))
    mat = spec.matrix(params)
    dim = 2**spec.num_qubits
    assert mat.shape == (dim, dim)
    assert np.allclose(mat @ mat.conj().T, np.eye(dim), atol=1e-10)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_inverse_params_gives_actual_inverse(name):
    spec = G.GATE_SPECS[name]
    if name == "iswap":
        with pytest.raises(GateError):
            G.inverse_params(name, ())
        return
    params = tuple(0.53 * (i + 1) for i in range(spec.num_params))
    inv_name, inv_params = G.inverse_params(name, params)
    product = G.gate_matrix(inv_name, inv_params) @ spec.matrix(params)
    dim = 2**spec.num_qubits
    # Inverse up to global phase.
    phase = product[0, 0]
    assert abs(abs(phase) - 1) < 1e-9
    assert np.allclose(product, phase * np.eye(dim), atol=1e-9)


@given(theta=ANGLES)
@settings(max_examples=50, deadline=None)
def test_rotation_composition(theta):
    half = G.rx_matrix(theta / 2)
    assert np.allclose(half @ half, G.rx_matrix(theta), atol=1e-9)


@given(theta=ANGLES, phi=ANGLES, lam=ANGLES)
@settings(max_examples=50, deadline=None)
def test_u_matrix_unitary(theta, phi, lam):
    mat = G.u_matrix(theta, phi, lam)
    assert np.allclose(mat @ mat.conj().T, np.eye(2), atol=1e-9)


def test_controlled_construction_matches_cx():
    assert np.allclose(G.controlled(G.X_MATRIX), G.CX_MATRIX)


def test_ccx_flips_only_when_both_controls_set():
    mat = G.CCX_MATRIX
    # |110> in (c1, c2, t) little-endian = index 3; flips t -> index 7.
    assert mat[7, 3] == 1 and mat[3, 7] == 1
    # |010> (only c2 set) stays put.
    assert mat[2, 2] == 1


def test_cswap_swaps_targets_only_with_control():
    mat = G.CSWAP_MATRIX
    assert mat[3, 5] == 1 and mat[5, 3] == 1  # c=1: |a=1,b=0> <-> |a=0,b=1>
    assert mat[2, 2] == 1  # c=0: untouched


def test_rzz_diagonal():
    mat = G.rzz_matrix(0.7)
    assert np.allclose(mat, np.diag(np.diag(mat)))


def test_hermitian_pairs_are_mutual():
    for spec in set(G.GATE_SPECS.values()):
        if spec.hermitian_pair:
            other = G.get_spec(spec.hermitian_pair)
            assert other.hermitian_pair == spec.name
