"""Algorithm library semantics: each circuit does what its name claims."""

import math

import numpy as np
import pytest

from repro.errors import CircuitError
from repro.quantum import library as lib
from repro.quantum.statevector import Statevector


def _counts(simulator, qc, shots=2000, seed=0):
    return simulator.run(qc, shots=shots, seed=seed).result().get_counts()


class TestEntangledStates:
    def test_bell_correlations(self, simulator):
        counts = _counts(simulator, lib.bell_pair(measure=True))
        assert set(counts) == {"00", "11"}
        assert abs(counts["00"] - counts["11"]) < 300

    def test_ghz_sizes(self, simulator):
        for n in (2, 3, 5):
            counts = _counts(simulator, lib.ghz_state(n, measure=True))
            assert set(counts) == {"0" * n, "1" * n}

    def test_ghz_requires_two_qubits(self):
        with pytest.raises(CircuitError):
            lib.ghz_state(1)


class TestQFT:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_matches_dft_matrix(self, n):
        dim = 2**n
        dft = np.array(
            [
                [np.exp(2j * np.pi * k * x / dim) for x in range(dim)]
                for k in range(dim)
            ]
        ) / math.sqrt(dim)
        qc = lib.qft(n)
        for x in (0, 1, dim // 2, dim - 1):
            init = np.zeros(dim, dtype=complex)
            init[x] = 1.0
            out = Statevector(init).evolve(qc)
            assert abs(np.vdot(dft[:, x], out.data)) > 1 - 1e-9

    def test_inverse_qft_undoes_qft(self):
        qc = lib.qft(3)
        qc.compose(lib.inverse_qft(3))
        sv = Statevector.from_circuit(qc)
        assert sv.probabilities_dict() == pytest.approx({"000": 1.0})

    def test_no_swaps_variant_differs(self):
        with_swaps = Statevector.from_label("001").evolve(lib.qft(3, do_swaps=True))
        without = Statevector.from_label("001").evolve(lib.qft(3, do_swaps=False))
        assert not with_swaps.equiv(without)


class TestOracleAlgorithms:
    def test_dj_constant0(self, simulator):
        counts = _counts(simulator, lib.deutsch_jozsa(3, "constant0"))
        assert counts == {"000": 2000}

    def test_dj_constant1(self, simulator):
        counts = _counts(simulator, lib.deutsch_jozsa(3, "constant1"))
        assert counts == {"000": 2000}

    def test_dj_balanced_never_zero(self, simulator):
        counts = _counts(simulator, lib.deutsch_jozsa(3, "balanced"))
        assert "000" not in counts

    def test_dj_balanced_patterns(self, simulator):
        for pattern in (0b001, 0b101, 0b110):
            counts = _counts(
                simulator, lib.deutsch_jozsa(3, "balanced", pattern), shots=200
            )
            assert "000" not in counts

    def test_dj_bad_kind(self):
        with pytest.raises(CircuitError):
            lib.deutsch_jozsa(3, "sometimes")

    def test_dj_bad_pattern(self):
        with pytest.raises(CircuitError):
            lib.dj_oracle(3, "balanced", pattern=8)

    @pytest.mark.parametrize("secret", ["1", "101", "1101", "00110"])
    def test_bernstein_vazirani_recovers_secret(self, simulator, secret):
        counts = _counts(simulator, lib.bernstein_vazirani(secret), shots=300)
        assert counts == {secret: 300}

    def test_bv_invalid_secret(self):
        with pytest.raises(CircuitError):
            lib.bernstein_vazirani("10a")


class TestGrover:
    @pytest.mark.parametrize("marked", ["11", "01"])
    def test_two_qubits_deterministic(self, simulator, marked):
        counts = _counts(simulator, lib.grover(2, [marked]))
        assert counts == {marked: 2000}

    @pytest.mark.parametrize("marked", ["101", "111", "000"])
    def test_three_qubits_dominant(self, simulator, marked):
        counts = _counts(simulator, lib.grover(3, [marked]))
        assert counts.get(marked, 0) / 2000 > 0.85

    def test_multiple_marked(self, simulator):
        counts = _counts(simulator, lib.grover(3, ["101", "010"]))
        hit = (counts.get("101", 0) + counts.get("010", 0)) / 2000
        assert hit > 0.85

    def test_no_marked_rejected(self):
        with pytest.raises(CircuitError):
            lib.grover(2, [])

    def test_invalid_marked_state(self):
        with pytest.raises(CircuitError):
            lib.grover(2, ["2x"])


class TestProtocols:
    @pytest.mark.parametrize("theta", [0.0, 1.0, 2.5])
    def test_teleportation_preserves_distribution(self, simulator, theta):
        qc = lib.teleportation(theta, 0.3, 0.0)
        counts = _counts(simulator, qc, shots=20_000, seed=3)
        p1 = sum(v for k, v in counts.items() if k[0] == "1") / 20_000
        assert p1 == pytest.approx(math.sin(theta / 2) ** 2, abs=0.02)

    @pytest.mark.parametrize("bits", ["00", "01", "10", "11"])
    def test_superdense_transmits_bits(self, simulator, bits):
        counts = _counts(simulator, lib.superdense_coding(bits), shots=200)
        assert counts == {bits: 200}

    def test_superdense_invalid_bits(self):
        with pytest.raises(CircuitError):
            lib.superdense_coding("102")


class TestPhaseEstimation:
    @pytest.mark.parametrize(
        "phase,expected", [(0.25, "010"), (0.375, "011"), (0.5, "100")]
    )
    def test_exact_phases(self, simulator, phase, expected):
        counts = _counts(simulator, lib.phase_estimation(phase, 3))
        assert max(counts, key=counts.get) == expected

    def test_inexact_phase_concentrates(self, simulator):
        counts = _counts(simulator, lib.phase_estimation(0.3, 3), shots=4000)
        # 0.3 * 8 = 2.4: mass concentrates on 010 and 011.
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:2]
        assert {k for k, _ in top} == {"010", "011"}

    def test_needs_counting_qubits(self):
        with pytest.raises(CircuitError):
            lib.phase_estimation(0.25, 0)


class TestWalkAndAnnealing:
    def test_walk_runs_and_spreads(self, simulator):
        counts = _counts(simulator, lib.quantum_walk_cycle(2), shots=1000, seed=4)
        assert sum(counts.values()) == 1000

    def test_walk_needs_steps(self):
        with pytest.raises(CircuitError):
            lib.quantum_walk_cycle(0)

    def test_annealing_finds_ising_ground_states(self, simulator):
        # Ferromagnetic ZZ chain at slow-ish schedule: aligned states dominate.
        qc = lib.tfim_annealing(3, steps=8, total_time=6.0)
        counts = _counts(simulator, qc, shots=4000, seed=5)
        aligned = (counts.get("000", 0) + counts.get("111", 0)) / 4000
        assert aligned > 0.4

    def test_annealing_validation(self):
        with pytest.raises(CircuitError):
            lib.tfim_annealing(1)
        with pytest.raises(CircuitError):
            lib.tfim_annealing(3, steps=0)


class TestRandomCircuit:
    def test_deterministic_by_seed(self):
        a = lib.random_circuit(3, 5, seed=9)
        b = lib.random_circuit(3, 5, seed=9)
        assert a == b

    def test_measure_flag(self):
        qc = lib.random_circuit(2, 3, seed=1, measure=True)
        assert qc.count_ops().get("measure") == 2
