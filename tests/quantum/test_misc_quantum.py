"""Noise model, topology, QASM and legacy-surface tests."""

import numpy as np
import pytest

from repro.errors import QasmError, QuantumDeprecationError, TranspilerError
from repro.quantum import legacy
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.library import teleportation
from repro.quantum.noise import NoiseModel, PauliNoise, ReadoutError
from repro.quantum.qasm import circuit_to_qasm, qasm_to_circuit
from repro.quantum.topology import CouplingMap


class TestPauliNoise:
    def test_depolarizing_splits_evenly(self):
        ch = PauliNoise.depolarizing(0.3)
        assert ch.p_x == pytest.approx(0.1)
        assert ch.error_probability == pytest.approx(0.3)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            PauliNoise(0.6, 0.6, 0.0)
        with pytest.raises(ValueError):
            PauliNoise(-0.1, 0.0, 0.0)

    def test_sampling_distribution(self):
        ch = PauliNoise(0.2, 0.0, 0.3)
        rng = np.random.default_rng(0)
        draws = [ch.sample(rng) for _ in range(10_000)]
        assert 0.17 < draws.count("x") / 10_000 < 0.23
        assert draws.count("y") == 0
        assert 0.27 < draws.count("z") / 10_000 < 0.33

    def test_scaled(self):
        ch = PauliNoise.bit_flip(0.4).scaled(0.5)
        assert ch.p_x == pytest.approx(0.2)


class TestNoiseModel:
    def test_lookup_priority_local_over_global(self):
        model = NoiseModel()
        model.add_all_qubit_error(PauliNoise.bit_flip(0.1), "x")
        model.add_local_error(PauliNoise.bit_flip(0.9), "x", [3])
        assert model.channel_for("x", (3,)).p_x == pytest.approx(0.9)
        assert model.channel_for("x", (0,)).p_x == pytest.approx(0.1)

    def test_trivial(self):
        assert NoiseModel().is_trivial
        assert not NoiseModel.uniform_depolarizing(1e-3, 1e-2).is_trivial

    def test_scaled_copies_everything(self):
        model = NoiseModel.uniform_depolarizing(0.01, 0.02, 0.03)
        half = model.scaled(0.5)
        assert half.channel_for("x", (0,)).error_probability == pytest.approx(0.005)
        assert half.readout.p1_given_0 == pytest.approx(0.015)
        # original untouched
        assert model.channel_for("x", (0,)).error_probability == pytest.approx(0.01)

    def test_readout_apply(self):
        err = ReadoutError(p1_given_0=1.0, p0_given_1=0.0)
        rng = np.random.default_rng(1)
        assert err.apply(0, rng) == 1
        assert err.apply(1, rng) == 1


class TestCouplingMap:
    def test_linear_ring_grid_full_shapes(self):
        assert CouplingMap.linear(4).edges == [(0, 1), (1, 2), (2, 3)]
        assert len(CouplingMap.ring(5).edges) == 5
        assert len(CouplingMap.grid(2, 3).edges) == 7
        assert len(CouplingMap.full(4).edges) == 6

    def test_brisbane_is_127_heavy_hex(self):
        cmap = CouplingMap.brisbane()
        assert cmap.num_qubits == 127
        assert cmap.is_connected()
        assert cmap.max_degree() <= 3  # the defining heavy-hex property

    def test_distance_and_path(self):
        cmap = CouplingMap.linear(5)
        assert cmap.distance(0, 4) == 4
        assert cmap.shortest_path(0, 2) == [0, 1, 2]

    def test_grid_embedding(self):
        assert CouplingMap.grid(4, 4).subgraph_has_grid(2, 2)
        assert not CouplingMap.linear(9).subgraph_has_grid(3, 3)

    def test_bad_constructions(self):
        with pytest.raises(TranspilerError):
            CouplingMap([])
        with pytest.raises(TranspilerError):
            CouplingMap([(0, 0)])
        with pytest.raises(TranspilerError):
            CouplingMap([(0, 2)])  # non-contiguous ids
        with pytest.raises(TranspilerError):
            CouplingMap.linear(1)

    def test_neighbors(self):
        cmap = CouplingMap.grid(2, 2)
        assert cmap.neighbors(0) == [1, 2]


class TestQasm:
    def test_roundtrip_bell(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure([0, 1], [0, 1])
        text = circuit_to_qasm(qc)
        assert "OPENQASM 2.0" in text
        rt = qasm_to_circuit(text)
        assert rt == qc or [i.name for i in rt] == [i.name for i in qc]

    def test_roundtrip_with_conditions(self):
        qc = teleportation()
        rt = qasm_to_circuit(circuit_to_qasm(qc))
        conditions = [i.condition for i in rt if i.condition]
        assert conditions == [(1, 1), (0, 1)]

    def test_roundtrip_parameterised(self):
        qc = QuantumCircuit(1)
        qc.rx(0.75, 0)
        qc.p(3.14159, 0)
        rt = qasm_to_circuit(circuit_to_qasm(qc))
        assert rt.instructions[0].params[0] == pytest.approx(0.75)

    def test_pi_angles_serialised_symbolically(self):
        import math

        qc = QuantumCircuit(1)
        qc.rz(math.pi / 2, 0)
        assert "pi/2" in circuit_to_qasm(qc)

    def test_multiple_registers_flattened(self):
        text = """
        OPENQASM 2.0;
        qreg a[1];
        qreg b[2];
        creg c[1];
        x b[1];
        measure b[1] -> c[0];
        """
        qc = qasm_to_circuit(text)
        assert qc.num_qubits == 3
        assert qc.instructions[0].qubits == (2,)

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("OPENQASM 2.0;\nqreg q[1];\nmystery q[0];")

    def test_unsafe_expression_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit(
                'OPENQASM 2.0;\nqreg q[1];\nrx(__import__("os")) q[0];'
            )

    def test_no_qreg_rejected(self):
        with pytest.raises(QasmError):
            qasm_to_circuit("OPENQASM 2.0;\ncreg c[1];")


class TestLegacySurface:
    def test_execute_raises_with_migration(self):
        with pytest.raises(QuantumDeprecationError, match="backend.run"):
            legacy.execute(None, None)

    def test_aer_attribute_access_raises(self):
        with pytest.raises(QuantumDeprecationError, match="LocalSimulator"):
            legacy.Aer.get_backend("qasm_simulator")

    def test_basicaer_call_raises(self):
        with pytest.raises(QuantumDeprecationError):
            legacy.BasicAer()

    def test_ibmq_raises(self):
        with pytest.raises(QuantumDeprecationError, match="Backend"):
            legacy.IBMQ.load_account()

    def test_get_statevector_raises(self):
        with pytest.raises(QuantumDeprecationError, match="from_circuit"):
            legacy.get_statevector(None)

    def test_all_symbols_have_hints(self):
        for symbol, hint in legacy.LEGACY_SYMBOLS.items():
            assert hint, symbol

    def test_importable_from_package(self):
        from repro.quantum import Aer, execute  # noqa: F401
