"""Property tests for the vectorised batch engine: batch == serial, always.

The contract under test is *bit-identity*: for every ``(seed, circuit, shots,
noise)`` and every grouping the planner may choose, ``executor="batch"``
produces exactly the counts (and memory) the serial engine produces.  The
fuzz tests therefore compare whole randomised workloads across a batch
service and a thread service seeded identically, on both execution paths
(ideal fast path and shot-batched trajectories), including mixed-structure
batches that must split into several groups.
"""

import threading

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import batchsim
from repro.quantum.backend import Backend, LocalSimulator
from repro.quantum.batchsim import engine as batch_engine
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService
from repro.quantum.noise import NoiseModel
from repro.quantum.simulator import (
    sample_from_state,
    trajectory_draw_plan,
)
from repro.quantum.statevector import Statevector, apply_matrix

# Gate pool for random structure generation: (method, arity, n_params).
_ONE_Q = [("h", 0), ("x", 0), ("s", 0), ("t", 0), ("rx", 1), ("ry", 1), ("rz", 1)]
_TWO_Q = [("cx", 0), ("cz", 0), ("crx", 1), ("swap", 0)]


def random_circuit(
    rng: np.random.Generator,
    num_qubits: int,
    depth: int,
    measure: str = "all",
) -> QuantumCircuit:
    """A random circuit; ``measure`` is ``"all"`` (final) or ``"mid"``."""
    qc = QuantumCircuit(num_qubits, num_qubits)
    for _ in range(depth):
        if num_qubits > 1 and rng.random() < 0.3:
            name, n_params = _TWO_Q[rng.integers(len(_TWO_Q))]
            a, b = rng.choice(num_qubits, size=2, replace=False)
            args = [int(a), int(b)]
        else:
            name, n_params = _ONE_Q[rng.integers(len(_ONE_Q))]
            args = [int(rng.integers(num_qubits))]
        params = [float(rng.uniform(0, 2 * np.pi)) for _ in range(n_params)]
        getattr(qc, name)(*params, *args)  # rotations take theta first
    if measure == "mid":
        qc.measure(0, 0)
        qc.x(0)
    qc.measure_all()
    return qc


def reparameterize(qc: QuantumCircuit, rng: np.random.Generator) -> QuantumCircuit:
    """Same structure, fresh angles — the planner must group these together."""
    out = QuantumCircuit(qc.num_qubits, qc.num_clbits)
    for inst in qc:
        params = tuple(
            float(rng.uniform(0, 2 * np.pi)) for _ in inst.params
        )
        out.append(
            inst.name, list(inst.qubits), list(inst.clbits), list(params),
            condition=inst.condition,
        )
    return out


def noisy_backend(p: float = 0.02, readout: float = 0.01) -> Backend:
    return Backend(
        name="batchsim-noisy",
        num_qubits=8,
        noise_model=NoiseModel.uniform_depolarizing(p, 2 * p, readout),
    )


def run_pair(backend, circuits, shots, seed, memory=False, use_cache=True):
    """Run one workload on a batch service and a thread service; return both."""
    batch_svc = ExecutionService(executor="batch", use_cache=use_cache)
    serial_svc = ExecutionService(executor="thread", use_cache=use_cache)
    try:
        got = batch_svc.run(
            circuits, backend=backend, shots=shots, seed=seed, memory=memory
        ).result()
        want = serial_svc.run(
            circuits, backend=backend, shots=shots, seed=seed, memory=memory
        ).result()
        return got, want, batch_svc
    finally:
        batch_svc.shutdown()
        serial_svc.shutdown()


def assert_results_identical(got, want, n, memory=False):
    for i in range(n):
        assert got.get_counts(i) == want.get_counts(i), f"circuit {i} diverged"
        if memory:
            assert got.get_memory(i) == want.get_memory(i)


# ---------------------------------------------------------------------------
# Kernel: batch_apply_matrix row-for-row vs the serial apply_matrix
# ---------------------------------------------------------------------------


class TestBatchKernel:
    def test_rows_bit_identical_to_serial_kernel(self):
        rng = np.random.default_rng(7)
        for _ in range(40):
            num_qubits = int(rng.integers(1, 6))
            batch = int(rng.integers(1, 9))
            k = int(rng.integers(1, min(num_qubits, 2) + 1))
            targets = [int(t) for t in rng.choice(num_qubits, size=k, replace=False)]
            raw = rng.normal(size=(2**k, 2**k)) + 1j * rng.normal(size=(2**k, 2**k))
            matrix, _ = np.linalg.qr(raw)
            states = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
                size=(batch, 2**num_qubits)
            )
            states /= np.linalg.norm(states, axis=1, keepdims=True)
            got = batchsim.batch_apply_matrix(states, matrix, targets, num_qubits)
            for row in range(batch):
                want = apply_matrix(states[row], matrix, targets, num_qubits)
                assert np.array_equal(got[row], want), (
                    f"row {row} deviates for targets {targets}"
                )

    def test_matrix_shape_mismatch_raises(self):
        states = np.zeros((2, 4), dtype=np.complex128)
        states[:, 0] = 1.0
        with pytest.raises(SimulationError, match="does not match"):
            batchsim.batch_apply_matrix(states, np.eye(4), [0], 2)

    def test_batch_statevector_validates_shape(self):
        with pytest.raises(SimulationError, match="2-D"):
            batchsim.BatchStatevector(np.zeros(4, dtype=np.complex128))
        with pytest.raises(SimulationError, match="power of two"):
            batchsim.BatchStatevector(np.zeros((2, 3), dtype=np.complex128))

    def test_apply_rows_touches_only_selected_rows(self):
        sv = batchsim.BatchStatevector.zero_states(3, 1)
        sv.apply_rows([1], np.array([[0, 1], [1, 0]], dtype=np.complex128), [0])
        assert sv.row(0)[0] == 1.0 and sv.row(1)[1] == 1.0 and sv.row(2)[0] == 1.0
        sv.apply_rows([], np.eye(2, dtype=np.complex128), [0])  # no-op
        assert sv.num_qubits == 1
        assert "batch=3" in repr(sv)


# ---------------------------------------------------------------------------
# Planner: groupings are exactly the provably-safe ones
# ---------------------------------------------------------------------------


class TestPlanner:
    def _units(self, circuits, shots=64, seed=5):
        return [
            batchsim.make_unit(i, qc, object(), seed + i, shots)
            for i, qc in enumerate(circuits)
        ]

    def test_same_structure_groups_even_with_different_params(self):
        rng = np.random.default_rng(0)
        base = random_circuit(rng, 3, 6)
        sweep = [base] + [reparameterize(base, rng) for _ in range(3)]
        groups = batchsim.plan(LocalSimulator(), self._units(sweep))
        assert len(groups) == 1
        assert groups[0].kind == batchsim.IDEAL
        assert len(groups[0].units) == 4

    def test_mixed_structures_split_into_groups(self):
        rng = np.random.default_rng(1)
        a = random_circuit(rng, 3, 5)
        b = random_circuit(rng, 3, 7)
        groups = batchsim.plan(
            LocalSimulator(), self._units([a, reparameterize(a, rng), b])
        )
        assert [len(g.units) for g in groups] == [2, 1]
        assert all(g.kind == batchsim.IDEAL for g in groups)

    def test_conditional_circuit_falls_back_to_serial(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.measure(0, 0)
        qc.append("x", [1], condition=(0, 1))
        qc.measure(1, 1)
        groups = batchsim.plan(noisy_backend(), self._units([qc]))
        assert [g.kind for g in groups] == [batchsim.SERIAL]

    def test_noisy_unit_becomes_singleton_shots_group(self):
        rng = np.random.default_rng(2)
        circuits = [random_circuit(rng, 2, 4) for _ in range(3)]
        groups = batchsim.plan(noisy_backend(), self._units(circuits))
        assert [g.kind for g in groups] == [batchsim.SHOTS] * 3
        assert all(len(g.units) == 1 for g in groups)

    def test_overridden_backend_is_never_batched(self):
        class Custom(Backend):
            def __init__(self):
                super().__init__(name="custom", num_qubits=4)

            def execute_circuit(self, circuit, shots, seed=None, memory=False):
                return {"00": shots}, None

        assert not batchsim.batchable_backend(Custom())
        assert batchsim.batchable_backend(LocalSimulator())
        rng = np.random.default_rng(3)
        groups = batchsim.plan(
            Custom(), self._units([random_circuit(rng, 2, 3)])
        )
        assert [g.kind for g in groups] == [batchsim.SERIAL]

    def test_serial_group_comes_last_and_plan_of_nothing_is_empty(self):
        rng = np.random.default_rng(4)
        ideal = random_circuit(rng, 2, 3)
        cond = QuantumCircuit(2, 2)
        cond.h(0)
        cond.measure(0, 0)
        cond.append("x", [1], condition=(0, 1))
        cond.measure(1, 1)
        groups = batchsim.plan(
            LocalSimulator(), self._units([cond, ideal])
        )
        assert [g.kind for g in groups] == [batchsim.IDEAL, batchsim.SERIAL]
        assert batchsim.plan(LocalSimulator(), []) == []

    def test_over_wide_circuit_falls_back_to_serial(self):
        from repro.quantum.simulator import MAX_DENSE_QUBITS

        wide = QuantumCircuit(MAX_DENSE_QUBITS + 1, 1)
        for q in range(MAX_DENSE_QUBITS + 1):
            wide.h(q)
        wide.measure(0, 0)
        backend = Backend(name="wide", num_qubits=MAX_DENSE_QUBITS + 2)
        groups = batchsim.plan(backend, self._units([wide]))
        assert [g.kind for g in groups] == [batchsim.SERIAL]

    def test_structure_fingerprint_ignores_params_only(self):
        rng = np.random.default_rng(5)
        base = random_circuit(rng, 3, 6)
        assert batchsim.structure_fingerprint(base) == (
            batchsim.structure_fingerprint(reparameterize(base, rng))
        )
        other = random_circuit(rng, 3, 6)
        assert batchsim.structure_fingerprint(base) != (
            batchsim.structure_fingerprint(other)
        )


# ---------------------------------------------------------------------------
# Engine: dispatch output vs Backend.execute_circuit, per unit
# ---------------------------------------------------------------------------


class TestEngineBitIdentity:
    def test_ideal_group_matches_serial_per_unit(self):
        rng = np.random.default_rng(11)
        backend = LocalSimulator()
        base = random_circuit(rng, 3, 8)
        circuits = [base] + [reparameterize(base, rng) for _ in range(5)]
        units = [
            batchsim.make_unit(i, qc, None, 100 + i, 257)
            for i, qc in enumerate(circuits)
        ]
        group = batchsim.plan(backend, units)[0]
        got = batchsim.dispatch(backend, group, True)
        for unit, (counts, mem) in zip(group.units, got):
            want_counts, want_mem = backend.execute_circuit(
                unit.circuit, unit.shots, unit.seed, True
            )
            assert counts == want_counts
            assert mem == want_mem

    def test_shared_seed_and_params_still_distinct_rows_when_needed(self):
        # Two units with identical params but different seeds share one
        # evolution row yet sample independently.
        backend = LocalSimulator()
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        units = [
            batchsim.make_unit(0, qc, None, 1, 400),
            batchsim.make_unit(1, qc, None, 2, 400),
        ]
        group = batchsim.plan(backend, units)[0]
        got = batchsim.dispatch(backend, group, False)
        for unit, (counts, _) in zip(units, got):
            want, _ = backend.execute_circuit(qc, 400, unit.seed, False)
            assert counts == want
        assert got[0][0] != got[1][0] or True  # distinct streams, same dist

    def test_trajectory_unit_matches_serial(self):
        rng = np.random.default_rng(12)
        backend = noisy_backend()
        for trial in range(6):
            qc = random_circuit(rng, 2, 5, measure="mid" if trial % 2 else "all")
            unit = batchsim.make_unit(0, qc, None, 900 + trial, 128)
            groups = batchsim.plan(backend, [unit])
            assert groups[0].kind == batchsim.SHOTS
            (counts, mem), = batchsim.dispatch(backend, groups[0], True)
            want_counts, want_mem = backend.execute_circuit(qc, 128, unit.seed, True)
            assert counts == want_counts
            assert mem == want_mem

    def test_reset_matches_serial_under_noise(self):
        backend = noisy_backend(p=0.05, readout=0.03)
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.reset(0)
        qc.h(1)
        qc.measure_all()
        unit = batchsim.make_unit(0, qc, None, 77, 300)
        group = batchsim.plan(backend, [unit])[0]
        (counts, mem), = batchsim.dispatch(backend, group, True)
        want_counts, want_mem = backend.execute_circuit(qc, 300, 77, True)
        assert counts == want_counts and mem == want_mem

    def test_barriers_are_skipped_on_both_paths(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.barrier()
        qc.cx(0, 1)
        qc.measure_all()
        for backend in (LocalSimulator(), noisy_backend()):
            unit = batchsim.make_unit(0, qc, None, 9, 120)
            group = batchsim.plan(backend, [unit])[0]
            (counts, _), = batchsim.dispatch(backend, group, False)
            want, _ = backend.execute_circuit(qc, 120, 9, False)
            assert counts == want

    def test_non_unitary_instruction_in_evolve_raises_serial_error(self):
        # Defensive guard mirroring Statevector.evolve: the planner never
        # routes such circuits to the ideal path, but the error text must
        # stay the serial one if it ever fires.
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.reset(0)
        with pytest.raises(SimulationError, match="only handles unitary"):
            batch_engine._evolve_rows([qc])

    def test_serial_group_is_not_executable_by_the_engine(self):
        qc = QuantumCircuit(1, 1)
        qc.measure_all()
        unit = batchsim.make_unit(0, qc, None, 1, 10)
        with pytest.raises(SimulationError, match="not executable"):
            batchsim.execute_group(
                None, batchsim.PlannedGroup(batchsim.SERIAL, [unit]), False
            )

    def test_tiling_cannot_affect_results(self, monkeypatch):
        rng = np.random.default_rng(13)
        backend = noisy_backend()
        base = random_circuit(rng, 3, 6)
        want_ideal = batchsim.dispatch(
            LocalSimulator(),
            batchsim.plan(
                LocalSimulator(),
                [
                    batchsim.make_unit(i, reparameterize(base, rng), None, i, 64)
                    for i in range(5)
                ],
            )[0],
            False,
        )
        noisy_unit = batchsim.make_unit(0, base, None, 3, 96)
        want_noisy = batchsim.dispatch(
            backend, batchsim.plan(backend, [noisy_unit])[0], False
        )
        # Force one-row/one-shot tiles: results must not move.
        monkeypatch.setattr(batch_engine, "MAX_BATCH_AMPLITUDES", 1)
        rng = np.random.default_rng(13)
        base = random_circuit(rng, 3, 6)
        got_ideal = batchsim.dispatch(
            LocalSimulator(),
            batchsim.plan(
                LocalSimulator(),
                [
                    batchsim.make_unit(i, reparameterize(base, rng), None, i, 64)
                    for i in range(5)
                ],
            )[0],
            False,
        )
        noisy_unit = batchsim.make_unit(0, base, None, 3, 96)
        got_noisy = batchsim.dispatch(
            backend, batchsim.plan(backend, [noisy_unit])[0], False
        )
        assert got_ideal == want_ideal
        assert got_noisy == want_noisy


# ---------------------------------------------------------------------------
# Draw plan: the schedule the shot-batcher replays
# ---------------------------------------------------------------------------


class TestDrawPlan:
    def test_widths_per_instruction(self):
        noise = NoiseModel.uniform_depolarizing(0.01, 0.02, 0.01)
        qc = QuantumCircuit(2, 2)
        qc.h(0)        # 1 draw (noisy 1q gate)
        qc.cx(0, 1)    # 2 draws (noisy 2q gate)
        qc.barrier()   # 0
        qc.reset(0)    # 1
        qc.measure(0, 0)  # 1 + 1 readout
        qc.measure(1, 1)  # 1 + 1 readout
        assert trajectory_draw_plan(qc, noise) == [1, 2, 0, 1, 2, 2]

    def test_no_noise_gate_draws_nothing(self):
        noise = NoiseModel()
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure(0, 0)
        assert trajectory_draw_plan(qc, noise) == [0, 1]

    def test_conditionals_have_no_static_plan(self):
        qc = QuantumCircuit(2, 2)
        qc.measure(0, 0)
        qc.append("x", [1], condition=(0, 1))
        assert trajectory_draw_plan(qc, NoiseModel()) is None


# ---------------------------------------------------------------------------
# Norm validation (satellite 1): corrupted states raise, never renormalise
# ---------------------------------------------------------------------------


class TestNormValidation:
    def _denormalized_state(self, scale: float) -> Statevector:
        # Bypass the constructor (which renormalises) to model a state
        # corrupted upstream, e.g. by a non-unitary custom gate matrix.
        state = Statevector.__new__(Statevector)
        data = np.zeros(4, dtype=np.complex128)
        data[0] = scale
        state._data = data
        state._num_qubits = 2
        return state

    def test_lost_normalisation_raises_not_renormalises(self):
        state = self._denormalized_state(0.9)
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError, match="lost normalisation"):
            sample_from_state(state, {0: 0, 1: 1}, 2, 10, rng)

    def test_rounding_dust_within_tolerance_is_fine(self):
        state = self._denormalized_state(1.0 + 1e-8)
        rng = np.random.default_rng(0)
        outcomes = sample_from_state(state, {0: 0, 1: 1}, 2, 10, rng)
        assert outcomes == ["00"] * 10

    def test_unmeasured_circuit_samples_zeros(self):
        state = Statevector.zero_state(2)
        assert sample_from_state(state, {}, 2, 3, np.random.default_rng(0)) == (
            ["00"] * 3
        )
        assert sample_from_state(state, {}, 0, 2, np.random.default_rng(0)) == (
            ["", ""]
        )


# ---------------------------------------------------------------------------
# Service-level fuzz: any grouping, both submit() and run(), bit-identical
# ---------------------------------------------------------------------------


class TestServiceFuzz:
    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_ideal_mixed_structure_workload(self, seed):
        rng = np.random.default_rng(seed)
        structures = [random_circuit(rng, 3, int(rng.integers(3, 9)))
                      for _ in range(3)]
        workload = []
        for _ in range(8):
            base = structures[rng.integers(len(structures))]
            workload.append(reparameterize(base, rng))
        got, want, _ = run_pair(LocalSimulator(), workload, 193, seed)
        assert_results_identical(got, want, len(workload))

    @pytest.mark.parametrize("seed", [31, 32])
    def test_noisy_workload_with_memory(self, seed):
        rng = np.random.default_rng(seed)
        workload = [
            random_circuit(rng, 2, int(rng.integers(3, 7)),
                           measure="mid" if i % 3 == 0 else "all")
            for i in range(4)
        ]
        got, want, _ = run_pair(
            noisy_backend(), workload, 97, seed, memory=True
        )
        assert_results_identical(got, want, len(workload), memory=True)

    def test_conditional_units_ride_the_serial_fallback(self):
        rng = np.random.default_rng(41)
        cond = QuantumCircuit(2, 2)
        cond.h(0)
        cond.measure(0, 0)
        cond.append("x", [1], condition=(0, 1))
        cond.measure(1, 1)
        workload = [random_circuit(rng, 2, 4), cond, random_circuit(rng, 2, 4)]
        got, want, svc = run_pair(LocalSimulator(), workload, 128, 41)
        assert_results_identical(got, want, len(workload))
        stats = svc.stats()
        # The conditional unit simulated serially; the rest batched.
        assert stats["simulations_batched"] == 2
        assert stats["simulations"] == 3

    def test_submit_path_matches_run_path(self):
        rng = np.random.default_rng(51)
        base = random_circuit(rng, 3, 6)
        workload = [reparameterize(base, rng) for _ in range(6)]
        svc_submit = ExecutionService(executor="batch")
        svc_run = ExecutionService(executor="batch")
        try:
            got = svc_submit.submit(
                workload, backend="local_simulator", shots=150, seed=51
            ).result(timeout=60)
            want = svc_run.run(
                workload, backend="local_simulator", shots=150, seed=51
            ).result()
            assert_results_identical(got, want, len(workload))
        finally:
            svc_submit.shutdown()
            svc_run.shutdown()

    def test_uncacheable_seedless_batch_still_works(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure_all()
        svc = ExecutionService(executor="batch")
        try:
            result = svc.run([qc, qc], shots=50).result()
            assert sum(result.get_counts(0).values()) == 50
            assert svc.stats()["simulations_batched"] == 2
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# Cache composition: hits, single-flight, and contested keys
# ---------------------------------------------------------------------------


class TestCacheComposition:
    def test_warm_rerun_simulates_nothing(self):
        rng = np.random.default_rng(61)
        workload = [random_circuit(rng, 2, 4) for _ in range(4)]
        svc = ExecutionService(executor="batch")
        try:
            first = svc.run(workload, shots=80, seed=61).result()
            warm = svc.run(workload, shots=80, seed=61).result()
            assert_results_identical(warm, first, len(workload))
            stats = svc.stats()
            assert stats["simulations"] == stats["simulations_batched"] == 4
            assert stats["cache_hits"] == 4
            assert stats["cache_misses"] == (
                stats["simulations"] + stats["simulations_deduped"]
            )
        finally:
            svc.shutdown()

    def test_duplicate_circuits_in_one_batch_dedup(self):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        qc.measure_all()
        svc = ExecutionService(executor="batch")
        try:
            # Index 0 and the rest derive different seeds, so only exact
            # duplicates (same derived seed) could collide; submit two
            # batches with overlapping keys concurrently instead.
            jobs = [
                svc.submit([qc], shots=64, seed=7) for _ in range(4)
            ]
            results = [job.result(timeout=60) for job in jobs]
            for r in results[1:]:
                assert r.get_counts(0) == results[0].get_counts(0)
            stats = svc.stats()
            assert stats["simulations"] + stats["simulations_deduped"] + (
                stats["cache_hits"]
            ) == 4
            assert stats["cache_misses"] == (
                stats["simulations"] + stats["simulations_deduped"]
            )
        finally:
            svc.shutdown()

    def test_contested_key_defers_to_foreign_leader(self):
        """A unit whose key a foreign thread leads waits, then dedups."""
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure_all()
        svc = ExecutionService(executor="batch")
        try:
            from repro.quantum.execution.cache import (
                circuit_fingerprint,
                noise_fingerprint,
            )
            from repro.quantum.execution.cache import CacheKey

            backend = LocalSimulator()
            key = CacheKey(
                circuit=circuit_fingerprint(qc),
                backend=backend.name,
                shots=64,
                seed=7,
                noise=noise_fingerprint(backend.noise_model),
                memory=False,
            )
            assert svc._try_lead(key)  # the test is the foreign leader
            done = threading.Event()
            out = {}

            def runner():
                out["result"] = svc.run(
                    qc, backend=backend, shots=64, seed=7
                ).result()
                done.set()

            thread = threading.Thread(target=runner)
            thread.start()
            # The batch group must not simulate the contested unit; it blocks
            # on our flight.  Fill the cache as the leader would, release.
            assert not done.wait(0.3)
            fake = {"1": 64}
            svc.cache.put(key, fake, None)
            svc._release_flight(key)
            assert done.wait(10)
            thread.join()
            assert out["result"].get_counts(0) == fake
            stats = svc.stats()
            assert stats["simulations"] == 0
            assert stats["simulations_deduped"] == 1
            assert stats["simulations_batched"] == 0
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# Counters and attribution
# ---------------------------------------------------------------------------


class TestCounters:
    def test_batched_counters_in_stats_and_scope(self):
        rng = np.random.default_rng(71)
        base = random_circuit(rng, 3, 5)
        workload = [reparameterize(base, rng) for _ in range(6)]
        svc = ExecutionService(executor="batch")
        try:
            with svc.stats_scope("fuzz") as scope:
                svc.run(workload, shots=64, seed=71).result()
            stats = svc.stats()
            assert stats["executor"] == "batch"
            assert stats["simulations_batched"] == 6
            assert stats["batch_groups"] == 1
            attributed = scope.as_dict()
            assert attributed["simulations_batched"] == 6
            assert attributed["batch_groups"] == 1
            assert attributed["simulations"] == 6
        finally:
            svc.shutdown()

    def test_noisy_units_count_one_group_each(self):
        rng = np.random.default_rng(81)
        workload = [random_circuit(rng, 2, 4) for _ in range(3)]
        svc = ExecutionService(executor="batch")
        try:
            svc.run(
                workload, backend=noisy_backend(), shots=32, seed=81
            ).result()
            stats = svc.stats()
            assert stats["simulations_batched"] == 3
            assert stats["batch_groups"] == 3  # SHOTS groups are singletons
        finally:
            svc.shutdown()

    def test_thread_executor_never_batches(self):
        qc = QuantumCircuit(1, 1)
        qc.h(0)
        qc.measure_all()
        svc = ExecutionService(executor="thread")
        try:
            svc.run(qc, shots=16, seed=1).result()
            stats = svc.stats()
            assert stats["simulations_batched"] == 0
            assert stats["batch_groups"] == 0
        finally:
            svc.shutdown()
