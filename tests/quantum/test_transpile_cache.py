"""The content-addressed transpile stage: keys, tiers, counters, restore.

The stage rides the execution result cache's entry protocol, so every tier
(memory LRU, disk, remote HTTP) and every durability property the execution
tests pin — content addressing, corruption tolerance, write-through — applies
to transpiled circuits too.  What *this* file pins:

* the cache key covers exactly (circuit fingerprint, coupling fingerprint,
  basis fingerprint, layout fingerprint, optimization level) — and nothing
  else, so renames and metadata edits still hit;
* the ``transpiles`` / ``transpile_cache_hits`` counters, globally and
  through stats scopes, without polluting the execution ``cache_hits`` /
  ``cache_misses`` counters (lookups go through ``peek``);
* warm starts: a fresh service over the same disk tier — and, the acceptance
  criterion, a repeated deterministic eval in a *fresh process* — performs
  zero transpiles;
* malformed cached payloads degrade to a recompute, never an error.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.quantum import library
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import (
    CacheServer,
    ExecutionService,
    basis_fingerprint,
    coupling_fingerprint,
    get_backend,
    stats_scope,
    transpile_cache_key,
)
from repro.quantum.execution.scopes import isolated_scopes
from repro.quantum.execution.transpile_cache import (
    decode_transpiled,
    encode_transpiled,
    layout_fingerprint,
)
from repro.quantum.topology import CouplingMap
from repro.quantum.transpiler import (
    ambient_optimization_level,
    resolve_lowering,
    transpile_core,
)


def _circuit(name="keyed"):
    qc = QuantumCircuit(3, 3, name=name)
    qc.h(0)
    qc.cx(0, 1)
    qc.cx(1, 2)
    qc.rz(0.5, 2)
    qc.measure_all()
    return qc


def _transpiled(circuit=None, **kwargs):
    circuit = circuit if circuit is not None else _circuit()
    cmap, basis = resolve_lowering(
        kwargs.get("backend"),
        kwargs.get("coupling_map"),
        kwargs.get("basis_gates"),
    )
    return transpile_core(
        circuit, cmap, basis,
        kwargs.get("initial_layout"),
        kwargs.get("optimization_level", 1),
    )


@pytest.fixture
def service():
    svc = ExecutionService(max_workers=1)
    yield svc
    svc.shutdown()


class TestCacheKey:
    def test_name_and_metadata_do_not_affect_the_key(self):
        a = _circuit(name="one")
        b = _circuit(name="two")
        b.metadata["note"] = "renamed and annotated"
        cmap = CouplingMap.linear(4)
        basis = ("rz", "sx", "cx")
        assert transpile_cache_key(a, cmap, basis, None, 1) == (
            transpile_cache_key(b, cmap, basis, None, 1)
        )

    def test_every_recipe_ingredient_changes_the_key(self):
        qc = _circuit()
        cmap = CouplingMap.linear(4)
        basis = ("rz", "sx", "cx")
        base = transpile_cache_key(qc, cmap, basis, None, 1)
        different = [
            transpile_cache_key(library.qft(3), cmap, basis, None, 1),
            transpile_cache_key(qc, CouplingMap.ring(4), basis, None, 1),
            transpile_cache_key(qc, None, basis, None, 1),
            transpile_cache_key(qc, cmap, ("u", "cx"), None, 1),
            transpile_cache_key(qc, cmap, basis, [2, 1, 0], 1),
            transpile_cache_key(qc, cmap, basis, None, 2),
        ]
        assert len({base, *different}) == len(different) + 1

    def test_basis_fingerprint_is_order_insensitive(self):
        assert basis_fingerprint(("cx", "rz", "sx")) == (
            basis_fingerprint(("sx", "cx", "rz"))
        )

    def test_coupling_and_layout_fingerprints_have_null_forms(self):
        assert coupling_fingerprint(None) == "none"
        assert layout_fingerprint(None) == "auto"
        assert coupling_fingerprint(CouplingMap.linear(3)) != "none"

    def test_keys_are_disjoint_from_execution_entries(self):
        key = transpile_cache_key(
            _circuit(), None, ("rz", "sx", "cx"), None, 1
        )
        assert key.backend.startswith("transpile:v1:")
        assert key.shots == 0


class TestEncodeDecode:
    def test_round_trip_restores_instructions_and_layouts(self):
        source = _circuit()
        source.metadata["origin"] = "round-trip"
        lowered = _transpiled(source, coupling_map=CouplingMap.linear(5))
        counts, payload = encode_transpiled(lowered)
        restored = decode_transpiled(counts, payload, source)
        assert restored is not None
        assert restored.instructions == lowered.instructions
        assert restored.num_qubits == lowered.num_qubits
        assert restored.num_clbits == lowered.num_clbits
        assert restored.name == f"{source.name}_t"
        assert restored.metadata["origin"] == "round-trip"
        assert restored.metadata["layout"] == lowered.metadata["layout"]
        assert restored.metadata["final_layout"] == (
            lowered.metadata["final_layout"]
        )
        assert all(
            isinstance(k, int) for k in restored.metadata["layout"]
        )

    def test_round_trip_preserves_conditions_and_params(self):
        source = QuantumCircuit(2, 2, name="conditional")
        source.h(0)
        source.measure(0, 0)
        source.append("rz", [1], params=(0.25,), condition=(0, 1))
        source.measure(1, 1)
        lowered = _transpiled(source)
        counts, payload = encode_transpiled(lowered)
        restored = decode_transpiled(counts, payload, source)
        assert restored.instructions == lowered.instructions
        conditioned = [
            i for i in restored.instructions if i.condition is not None
        ]
        assert conditioned and conditioned[0].condition == (0, 1)

    @pytest.mark.parametrize(
        "counts, payload",
        [
            ({"qubits": 3, "clbits": 3, "size": 1}, None),
            ({"qubits": 3, "clbits": 3, "size": 1}, []),
            ({"qubits": 3, "clbits": 3, "size": 1}, ["not json"]),
            ({"qubits": 3, "clbits": 3, "size": 1}, ['{"half": true}']),
            ({"00": 12, "11": 52}, ['{"instructions": []}']),
        ],
        ids=["no-payload", "empty", "not-json", "missing-keys", "exec-entry"],
    )
    def test_malformed_entries_decode_to_none(self, counts, payload):
        assert decode_transpiled(counts, payload, _circuit()) is None


class TestServiceStage:
    def test_miss_then_hit(self, service):
        first = service.transpile(_circuit(), coupling_map=CouplingMap.linear(4))
        second = service.transpile(_circuit(), coupling_map=CouplingMap.linear(4))
        stats = service.stats()
        assert stats["transpiles"] == 1
        assert stats["transpile_cache_hits"] == 1
        assert second.instructions == first.instructions
        assert second.metadata["layout"] == first.metadata["layout"]

    def test_scope_attribution(self, service):
        with isolated_scopes(), stats_scope("stage") as scope:
            service.transpile(_circuit())
            service.transpile(_circuit())
        counters = scope.as_dict()
        assert counters["transpiles"] == 1
        assert counters["transpile_cache_hits"] == 1

    def test_execution_counters_stay_clean(self, service):
        """Transpile lookups use ``peek``: the execution hit/miss ledger
        (and its hit rate) must not move when only transpiles happen."""
        with isolated_scopes(), stats_scope("clean") as scope:
            service.transpile(_circuit())
            service.transpile(_circuit())
        counters = scope.as_dict()
        assert counters["cache_hits"] == 0
        assert counters["cache_misses"] == 0
        stats = service.stats()
        assert stats["cache_hits"] == 0
        assert stats["cache_misses"] == 0

    def test_uncached_service_always_recomputes(self):
        service = ExecutionService(use_cache=False, max_workers=1)
        try:
            service.transpile(_circuit())
            service.transpile(_circuit())
            stats = service.stats()
            assert stats["transpiles"] == 2
            assert stats["transpile_cache_hits"] == 0
        finally:
            service.shutdown()

    def test_explicit_level_beats_ambient(self, service):
        qc = QuantumCircuit(1, 1, name="levels")
        qc.h(0)
        qc.h(0)
        qc.measure(0, 0)
        basis = ("h", "rz", "cx")
        with ambient_optimization_level(0):
            kept = service.transpile(qc, basis_gates=basis)
            cancelled = service.transpile(
                qc, basis_gates=basis, optimization_level=1
            )
        assert [i.name for i in kept.instructions] == ["h", "h", "measure"]
        assert [i.name for i in cancelled.instructions] == ["measure"]

    def test_string_backend_resolves(self, service):
        backend = get_backend("fake_falcon")
        by_name = service.transpile(_circuit(), backend="fake_falcon")
        by_object = service.transpile(_circuit(), backend=backend)
        assert by_name.instructions == by_object.instructions
        assert service.stats()["transpile_cache_hits"] == 1

    def test_poisoned_entry_degrades_to_recompute(self, tmp_path):
        service = ExecutionService(max_workers=1, cache_dir=tmp_path)
        try:
            qc = _circuit()
            cmap, basis = resolve_lowering(None, None, None)
            key = transpile_cache_key(qc, cmap, basis, None, 1)
            service.cache.put(
                key, {"qubits": 3, "clbits": 3, "size": 1}, ["garbage"], ()
            )
            lowered = service.transpile(qc)
            assert service.stats()["transpiles"] == 1
            assert service.stats()["transpile_cache_hits"] == 0
            assert lowered.instructions == _transpiled(qc).instructions
            # The recompute overwrote the poison: next lookup is a real hit.
            assert service.transpile(qc).instructions == lowered.instructions
            assert service.stats()["transpile_cache_hits"] == 1
        finally:
            service.shutdown()


class TestWarmStarts:
    def test_fresh_service_warm_disk_performs_zero_transpiles(self, tmp_path):
        qc = library.grover(3, ["101"])
        cold = ExecutionService(max_workers=1, cache_dir=tmp_path)
        try:
            first = cold.transpile(qc, backend="fake_falcon")
            assert cold.stats()["transpiles"] == 1
        finally:
            cold.shutdown()
        warm = ExecutionService(max_workers=1, cache_dir=tmp_path)
        try:
            second = warm.transpile(qc, backend="fake_falcon")
            stats = warm.stats()
            assert stats["transpiles"] == 0
            assert stats["transpile_cache_hits"] == 1
            assert second.instructions == first.instructions
            assert second.metadata["layout"] == first.metadata["layout"]
            assert second.metadata["final_layout"] == (
                first.metadata["final_layout"]
            )
        finally:
            warm.shutdown()

    def test_remote_tier_shares_transpiles_across_services(self, tmp_path):
        qc = library.qft(3)
        with CacheServer(tmp_path) as server:
            seeder = ExecutionService(max_workers=1, remote_url=server.url)
            try:
                first = seeder.transpile(qc, coupling_map=CouplingMap.linear(4))
                assert seeder.stats()["transpiles"] == 1
            finally:
                seeder.shutdown()
            reader = ExecutionService(max_workers=1, remote_url=server.url)
            try:
                second = reader.transpile(
                    qc, coupling_map=CouplingMap.linear(4)
                )
                stats = reader.stats()
                assert stats["transpiles"] == 0
                assert stats["transpile_cache_hits"] == 1
                assert second.instructions == first.instructions
            finally:
                reader.shutdown()


_EVAL_SCRIPT = """\
import json
from repro.evalsuite import PipelineSettings, build_suite, evaluate
from repro.llm.faults import ModelConfig

settings = PipelineSettings(
    ModelConfig("3b", fine_tuned=True), samples_per_task=1, label="warmstart"
)
result = evaluate(settings, build_suite())
print(json.dumps({
    key: result.execution_stats.get(key, 0)
    for key in ("transpiles", "transpile_cache_hits", "simulations")
}))
"""


class TestFreshProcessAcceptance:
    def test_repeated_eval_in_fresh_process_performs_zero_transpiles(
        self, tmp_path
    ):
        """The PR's acceptance criterion: a repeated deterministic eval in a
        *fresh process* with a warm disk cache performs zero transpiles —
        the stage is content-addressed all the way down to disk, not merely
        memoised in-process."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        env.pop("REPRO_CACHE_URL", None)
        env.pop("REPRO_EVAL_WORKERS", None)

        def run_once():
            proc = subprocess.run(
                [sys.executable, "-c", _EVAL_SCRIPT],
                env=env, capture_output=True, text=True, timeout=600,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = run_once()
        assert cold["transpiles"] > 0
        warm = run_once()
        assert warm["transpiles"] == 0
        assert warm["transpile_cache_hits"] == cold["transpiles"]
        assert warm["simulations"] == 0  # execution tier is warm too


class TestFigure4Integration:
    def test_repeated_figure4_run_performs_zero_transpiles(self):
        """The driver routes its lowering through the cached stage, so a
        repeat performs zero transpiles (asserted via a stats scope around
        the second run — not a racy global-counter diff)."""
        from repro.experiments import figure4

        figure4.run(shots=512, seed=2)
        with stats_scope("figure4-repeat") as scope:
            experiment = figure4.run(shots=512, seed=2)
        counters = scope.as_dict()
        assert counters["transpiles"] == 0
        assert counters["transpile_cache_hits"] >= 1
        assert "0 transpiles" in experiment.extras[-1]
