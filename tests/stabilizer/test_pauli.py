"""PauliString algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QECError
from repro.stabilizer.pauli import PauliString, syndrome_of

PAULI_CHARS = st.sampled_from("IXYZ")
pauli_strings = st.lists(PAULI_CHARS, min_size=1, max_size=6).map(
    lambda chars: PauliString(chars)
)


class TestConstruction:
    def test_identity(self):
        p = PauliString.identity(3)
        assert p.weight == 0
        assert p.to_label() == "III"

    def test_from_label_reverses_order(self):
        p = PauliString.from_label("XZ")  # X on qubit 1, Z on qubit 0
        assert p.paulis == ("Z", "X")

    def test_from_label_phases(self):
        assert PauliString.from_label("-X").phase == -1
        assert PauliString.from_label("iZ").phase == 1j
        assert PauliString.from_label("-iY").phase == -1j
        assert PauliString.from_label("+X").phase == 1

    def test_single(self):
        p = PauliString.single(4, 2, "y")
        assert p.paulis == ("I", "I", "Y", "I")

    def test_single_out_of_range(self):
        with pytest.raises(QECError):
            PauliString.single(2, 5, "X")

    def test_from_sparse(self):
        p = PauliString.from_sparse(4, [(0, "X"), (3, "Z")])
        assert p.support() == (0, 3)

    def test_from_sparse_duplicate(self):
        with pytest.raises(QECError):
            PauliString.from_sparse(3, [(0, "X"), (0, "Z")])

    def test_invalid_character(self):
        with pytest.raises(QECError):
            PauliString(["Q"])


class TestAlgebra:
    def test_multiplication_table(self):
        x = PauliString(["X"])
        y = PauliString(["Y"])
        z = PauliString(["Z"])
        assert (x * y).to_label() == "iZ"
        assert (y * x).to_label() == "-iZ"
        assert (x * x).to_label() == "I"
        assert (z * x).to_label() == "iY"

    def test_commutation(self):
        assert PauliString.from_label("XX").commutes_with(PauliString.from_label("ZZ"))
        assert not PauliString.from_label("XI").commutes_with(
            PauliString.from_label("ZI")
        )

    def test_size_mismatch(self):
        with pytest.raises(QECError):
            PauliString(["X"]) * PauliString(["X", "X"])

    def test_tensor(self):
        p = PauliString(["X"]).tensor(PauliString(["Z"]))
        assert p.paulis == ("X", "Z")

    def test_x_z_bits(self):
        p = PauliString(["X", "Y", "Z", "I"])
        assert p.x_bits().tolist() == [True, True, False, False]
        assert p.z_bits().tolist() == [False, True, True, False]

    @given(a=pauli_strings, b=pauli_strings)
    @settings(max_examples=60, deadline=None)
    def test_commutation_is_symmetric(self, a, b):
        if a.num_qubits != b.num_qubits:
            return
        assert a.commutes_with(b) == b.commutes_with(a)

    @given(a=pauli_strings)
    @settings(max_examples=30, deadline=None)
    def test_self_product_is_identity(self, a):
        product = a * a
        assert all(p == "I" for p in product.paulis)

    @given(a=pauli_strings, b=pauli_strings)
    @settings(max_examples=60, deadline=None)
    def test_product_phase_consistency(self, a, b):
        """(ab)(ba) = a b b a = a a (phase cancels) -> identity with +1."""
        if a.num_qubits != b.num_qubits:
            return
        product = (a * b) * (b * a)
        assert all(p == "I" for p in product.paulis)
        assert product.phase == a.phase**2 * b.phase**2


class TestSyndrome:
    def test_syndrome_of(self):
        checks = [PauliString.from_label("ZZI"), PauliString.from_label("IZZ")]
        error = PauliString.single(3, 0, "X")  # qubit 0 = rightmost label char
        assert syndrome_of(error, checks) == (0, 1)

    def test_label_roundtrip(self):
        for label in ("XIZ", "-YY", "iIX"):
            assert PauliString.from_label(label).to_label() == label
