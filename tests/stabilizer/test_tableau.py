"""CHP tableau simulator, cross-checked against the dense simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum.backend import LocalSimulator
from repro.quantum.circuit import QuantumCircuit
from repro.stabilizer.pauli import PauliString
from repro.stabilizer.tableau import StabilizerTableau

CLIFFORD_1Q = ["h", "s", "sdg", "x", "y", "z"]
CLIFFORD_2Q = ["cx", "cz", "swap"]


def random_clifford_circuit(n, depth, seed):
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(n, n)
    for _ in range(depth):
        if rng.random() < 0.6 or n < 2:
            qc.append(str(rng.choice(CLIFFORD_1Q)), [int(rng.integers(n))])
        else:
            a, b = rng.choice(n, size=2, replace=False)
            qc.append(str(rng.choice(CLIFFORD_2Q)), [int(a), int(b)])
    qc.measure(list(range(n)), list(range(n)))
    return qc


class TestBasics:
    def test_initial_state_measures_zero(self):
        t = StabilizerTableau(3, rng=np.random.default_rng(0))
        assert [t.measure(q) for q in range(3)] == [0, 0, 0]

    def test_x_flips(self):
        t = StabilizerTableau(2, rng=np.random.default_rng(0))
        t.x(1)
        assert t.measure(0) == 0
        assert t.measure(1) == 1

    def test_h_gives_random_measure_then_collapses(self):
        outcomes = set()
        for seed in range(20):
            t = StabilizerTableau(1, rng=np.random.default_rng(seed))
            t.h(0)
            first = t.measure(0)
            outcomes.add(first)
            # Repeated measurement is now deterministic.
            assert t.measure(0) == first
        assert outcomes == {0, 1}

    def test_ghz_correlations(self):
        for seed in range(30):
            t = StabilizerTableau(3, rng=np.random.default_rng(seed))
            t.h(0)
            t.cx(0, 1)
            t.cx(1, 2)
            bits = [t.measure(q) for q in range(3)]
            assert len(set(bits)) == 1

    def test_reset(self):
        t = StabilizerTableau(1, rng=np.random.default_rng(3))
        t.x(0)
        t.reset(0)
        assert t.measure(0) == 0

    def test_swap(self):
        t = StabilizerTableau(2, rng=np.random.default_rng(0))
        t.x(0)
        t.swap(0, 1)
        assert t.measure(0) == 0
        assert t.measure(1) == 1

    def test_needs_a_qubit(self):
        with pytest.raises(SimulationError):
            StabilizerTableau(0)


class TestAgainstDenseSimulator:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_clifford_distributions_match(self, seed):
        n, depth, shots = 3, 14, 2000
        qc = random_clifford_circuit(n, depth, seed)
        dense = LocalSimulator().run(qc, shots=shots, seed=99).result().get_counts()
        tableau_counts: dict[str, int] = {}
        for s in range(shots):
            t = StabilizerTableau(n, rng=np.random.default_rng(s * 31 + 7))
            bits = t.apply_circuit(qc)
            key = "".join(str(b) for b in reversed(bits))
            tableau_counts[key] = tableau_counts.get(key, 0) + 1
        keys = set(dense) | set(tableau_counts)
        tvd = 0.5 * sum(
            abs(dense.get(k, 0) - tableau_counts.get(k, 0)) / shots for k in keys
        )
        assert tvd < 0.06, (seed, dense, tableau_counts)

    def test_non_clifford_rejected(self):
        t = StabilizerTableau(1)
        qc = QuantumCircuit(1)
        qc.t(0)
        with pytest.raises(SimulationError, match="Clifford"):
            t.apply_circuit(qc)


class TestObservables:
    def test_bell_stabilizers(self):
        t = StabilizerTableau(2, rng=np.random.default_rng(0))
        t.h(0)
        t.cx(0, 1)
        assert t.expectation_sign(PauliString.from_label("XX")) == 1
        assert t.expectation_sign(PauliString.from_label("ZZ")) == 1
        assert t.expectation_sign(PauliString.from_label("YY")) == -1
        assert t.expectation_sign(PauliString.from_label("ZI")) is None

    def test_expectation_is_nondestructive(self):
        t = StabilizerTableau(2, rng=np.random.default_rng(1))
        t.h(0)
        t.cx(0, 1)
        t.expectation_sign(PauliString.from_label("ZZ"))
        # The state still has deterministic ZZ after probing.
        assert t.measure_pauli(PauliString.from_label("ZZ")) == 0

    def test_measure_pauli_matches_sign(self):
        t = StabilizerTableau(2, rng=np.random.default_rng(2))
        t.x(0)
        # Z on qubit 0 has value -1 -> outcome bit 1.
        assert t.measure_pauli(PauliString.from_label("IZ")) == 1

    def test_stabilizer_generators_of_zero_state(self):
        t = StabilizerTableau(2)
        labels = {g.to_label() for g in t.stabilizer_generators()}
        assert labels == {"IZ", "ZI"}

    def test_generators_after_h(self):
        t = StabilizerTableau(1)
        t.h(0)
        assert t.stabilizer_generators()[0].to_label() == "X"

    def test_apply_pauli_flips_sign(self):
        t = StabilizerTableau(1)
        t.apply_pauli(PauliString.from_label("X"))
        assert t.measure(0) == 1

    def test_copy_independent(self):
        t = StabilizerTableau(1, rng=np.random.default_rng(0))
        c = t.copy()
        c.x(0)
        assert t.measure(0) == 0
        assert c.measure(0) == 1
