"""Stabilizer code constructions: structure, commutation, matching graphs."""

import numpy as np
import pytest

from repro.errors import CodeConstructionError
from repro.qec.codes.base import BOUNDARY, CSSCode, _gf2_rank
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.steane import SteaneCode
from repro.qec.codes.surface import SurfaceCode


class TestSurfaceCode:
    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_counts(self, d):
        code = SurfaceCode(d)
        assert code.num_data_qubits == d * d
        assert code.num_x_checks == (d * d - 1) // 2
        assert code.num_z_checks == (d * d - 1) // 2
        assert code.num_logical_qubits == 1

    def test_even_distance_rejected(self):
        with pytest.raises(CodeConstructionError):
            SurfaceCode(4)
        with pytest.raises(CodeConstructionError):
            SurfaceCode(1)

    @pytest.mark.parametrize("d", [3, 5])
    def test_all_stabilizers_commute(self, d):
        code = SurfaceCode(d)
        stabilizers = code.stabilizers()
        for i, a in enumerate(stabilizers):
            for b in stabilizers[i + 1 :]:
                assert a.commutes_with(b)

    @pytest.mark.parametrize("d", [3, 5])
    def test_logicals_commute_with_stabilizers_and_anticommute(self, d):
        code = SurfaceCode(d)
        lx = code.logical_x_operator()
        lz = code.logical_z_operator()
        for stab in code.stabilizers():
            assert lx.commutes_with(stab)
            assert lz.commutes_with(stab)
        assert not lx.commutes_with(lz)

    def test_logical_weights_equal_distance(self):
        code = SurfaceCode(5)
        assert code.logical_x_operator().weight == 5
        assert code.logical_z_operator().weight == 5

    def test_distance_verified_exhaustively_d3(self):
        """No X error of weight < 3 is an undetected logical operator."""
        import itertools

        code = SurfaceCode(3)
        n = code.num_data_qubits
        for weight in (1, 2):
            for support in itertools.combinations(range(n), weight):
                error = np.zeros(n, dtype=bool)
                error[list(support)] = True
                syndrome = code.syndrome(error, "x")
                if not syndrome.any():
                    assert not code.logical_flipped(error, "x"), support

    def test_bulk_checks_have_weight_4(self):
        code = SurfaceCode(5)
        weights = sorted(code.hx.sum(axis=1))
        assert set(weights) <= {2, 4}
        assert weights.count(2) > 0 and weights.count(4) > 0

    def test_matching_graph_structure(self):
        code = SurfaceCode(3)
        graph = code.matching_graph("x")
        assert BOUNDARY in graph.nodes
        assert graph.number_of_nodes() == code.num_z_checks + 1
        # every data qubit appears as exactly one fault edge
        faults = sorted(d["fault"] for _, _, d in graph.edges(data=True))
        assert len(set(faults)) == len(faults)

    def test_ascii_lattice_renders(self):
        code = SurfaceCode(3)
        err = np.zeros(9, dtype=bool)
        err[4] = True
        art = code.ascii_lattice(err, {0}, "x")
        assert "X" in art and "*" in art and "." in art

    def test_data_index_bounds(self):
        code = SurfaceCode(3)
        assert code.data_index(1, 2) == 5
        with pytest.raises(CodeConstructionError):
            code.data_index(3, 0)


class TestRepetitionCode:
    def test_structure(self):
        code = RepetitionCode(5)
        assert code.num_data_qubits == 5
        assert code.num_z_checks == 4
        assert code.num_x_checks == 0
        assert code.num_logical_qubits == 1

    def test_even_distance_rejected(self):
        with pytest.raises(CodeConstructionError):
            RepetitionCode(4)

    def test_single_x_error_syndrome(self):
        code = RepetitionCode(3)
        error = np.array([False, True, False])
        assert code.syndrome(error, "x").tolist() == [True, True]

    def test_full_flip_is_logical(self):
        code = RepetitionCode(3)
        error = np.ones(3, dtype=bool)
        assert not code.syndrome(error, "x").any()
        assert code.logical_flipped(error, "x")


class TestSteaneCode:
    def test_structure(self):
        code = SteaneCode()
        assert code.num_data_qubits == 7
        assert code.num_logical_qubits == 1
        assert code.distance == 3

    def test_syndrome_reads_qubit_index(self):
        code = SteaneCode()
        for q in range(7):
            error = np.zeros(7, dtype=bool)
            error[q] = True
            syndrome = code.syndrome(error, "x")
            assert SteaneCode.syndrome_to_qubit(syndrome) == q

    def test_trivial_syndrome(self):
        assert SteaneCode.syndrome_to_qubit(np.zeros(3, dtype=bool)) is None

    def test_self_dual(self):
        code = SteaneCode()
        assert (code.hx == code.hz).all()


class TestCSSValidation:
    def test_non_commuting_checks_rejected(self):
        hx = np.array([[True, False]])
        hz = np.array([[True, False]])
        with pytest.raises(CodeConstructionError, match="CSS"):
            CSSCode(
                "bad", hx, hz,
                logical_x=np.array([True, False]),
                logical_z=np.array([True, False]),
                distance=1,
            )

    def test_logical_must_anticommute(self):
        code = RepetitionCode(3)
        with pytest.raises(CodeConstructionError, match="anticommute"):
            CSSCode(
                "bad", code.hx, code.hz,
                logical_x=np.zeros(3, dtype=bool),
                logical_z=np.zeros(3, dtype=bool),
                distance=3,
            )

    def test_gf2_rank(self):
        m = np.array([[1, 0, 1], [0, 1, 1], [1, 1, 0]], dtype=bool)
        assert _gf2_rank(m) == 2  # row3 = row1 + row2 over GF(2)

    def test_syndrome_bad_error_type(self):
        with pytest.raises(CodeConstructionError):
            RepetitionCode(3).syndrome(np.zeros(3, dtype=bool), "w")
