"""Syndrome extraction (phenomenological + circuit-level) and experiments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QECError, TopologyError
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.surface import SurfaceCode
from repro.qec.decoder_gen import GeneratedDecoder, generate_decoder
from repro.qec.experiments import (
    MEMORY_BACKEND,
    MemoryExperimentCircuit,
    MemoryExperimentSpec,
    average_qubit_lifetime_gain,
    logical_error_rate,
    qec_suppression_factor,
    threshold_sweep,
)
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import (
    extraction_circuit,
    run_extraction_on_tableau,
    sample_memory,
)
from repro.quantum.topology import CouplingMap


class TestPhenomenologicalSampling:
    def test_noiseless_run_has_no_events(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 4, 0.0, 0.0, rng)
        assert history.detection_events == []
        assert not history.true_error.any()

    def test_final_round_is_perfect(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 3, 0.1, 0.3, rng)
        expected = code.syndrome(history.true_error, "x")
        assert (history.syndromes[-1] == expected).all()

    def test_detection_events_are_syndrome_diffs(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 3, 0.08, 0.08, rng)
        rebuilt = set()
        prev = np.zeros(code.num_z_checks, dtype=bool)
        for t in range(history.rounds + 1):
            for c in np.flatnonzero(history.syndromes[t] ^ prev):
                rebuilt.add((t, int(c)))
            prev = history.syndromes[t]
        assert rebuilt == set(history.detection_events)

    def test_parameter_validation(self, rng):
        code = SurfaceCode(3)
        with pytest.raises(QECError):
            sample_memory(code, 0, 0.1, 0.1, rng)
        with pytest.raises(QECError):
            sample_memory(code, 1, 1.5, 0.1, rng)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_event_parity_is_even_or_boundary_matched(self, seed):
        """Within one shot, detection events of the bulk pair up modulo the
        boundary — i.e. decoding never encounters an unmatchable instance."""
        code = SurfaceCode(3)
        rng = np.random.default_rng(seed)
        history = sample_memory(code, 3, 0.05, 0.05, rng)
        decoder = MWPMDecoder(code, "x")
        result = decoder.decode(history)  # raises DecodingError if unmatched
        assert result is not None


class TestCircuitLevelExtraction:
    @pytest.mark.parametrize("error_type", ["x", "z"])
    def test_matches_algebraic_syndrome(self, error_type):
        code = SurfaceCode(3)
        rng = np.random.default_rng(3)
        for trial in range(8):
            errors = list(np.flatnonzero(rng.random(9) < 0.3))
            measured = run_extraction_on_tableau(
                code, errors, error_type, rng=np.random.default_rng(trial)
            )
            bits = np.zeros(9, dtype=bool)
            bits[errors] = True
            assert (measured == code.syndrome(bits, error_type)).all()

    def test_extraction_circuit_shape(self):
        code = SurfaceCode(3)
        qc = extraction_circuit(code, "x")
        assert qc.num_qubits == 9 + 4
        assert qc.count_ops()["measure"] == 4
        assert qc.count_ops()["reset"] == 4

    def test_bad_data_qubit_rejected(self):
        with pytest.raises(QECError):
            run_extraction_on_tableau(SurfaceCode(3), [100], "x")


class TestExperiments:
    def test_logical_error_rate_zero_noise(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.0, shots=20, seed=0
        )
        assert result.logical_error_rate == 0.0

    def test_high_noise_fails_often(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=3, p_data=0.3, shots=60, seed=0
        )
        assert result.logical_error_rate > 0.2

    def test_determinism(self):
        code = SurfaceCode(3)
        a = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.05, shots=40, seed=9
        )
        b = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.05, shots=40, seed=9
        )
        assert a.logical_failures == b.logical_failures

    def test_per_round_rate_inversion(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=4, p_data=0.05, shots=100, seed=1
        )
        per_round = result.logical_error_per_round
        assert 0 <= per_round <= result.logical_error_rate + 1e-9

    def test_suppression_factor_below_threshold(self):
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        assert 0 < factor < 1.0

    def test_suppression_factor_bounded_with_no_failures(self):
        """Zero observed failures must give a Wilson-bounded, nonzero factor."""
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.001, shots=30, seed=2
        )
        assert 0 < factor <= 1.0

    def test_lifetime_gain_inverse_of_suppression(self):
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        gain = average_qubit_lifetime_gain(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        assert gain == pytest.approx(1.0 / factor)

    def test_threshold_sweep_shape(self):
        sweep = threshold_sweep(
            SurfaceCode, [3], [0.01, 0.1], shots=30, seed=3
        )
        assert set(sweep) == {3}
        rates = [p_l for _, p_l in sweep[3]]
        assert rates[1] >= rates[0]  # more noise, more failures

    def test_shot_validation(self):
        code = RepetitionCode(3)
        with pytest.raises(QECError):
            logical_error_rate(code, MWPMDecoder(code, "x"), 1, 0.1, shots=0)


class _OpaqueDecoder:
    """A decoder the ExecutionService cannot reconstruct in a worker."""

    def __init__(self, inner):
        self.inner = inner

    def decode(self, history):
        return self.inner.decode(history)


class TestExecutionServiceRouting:
    """QEC memory experiments run through the shared ExecutionService."""

    def _service(self):
        from repro.quantum.execution import ExecutionService

        return ExecutionService(max_workers=2)

    def test_routed_matches_inline_loop(self):
        """The service path must be bit-identical to the legacy shot loop."""
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "x")
        service = self._service()
        try:
            routed = logical_error_rate(
                code, decoder, 3, 0.06, shots=50, seed=13, service=service
            )
            inline = logical_error_rate(
                code, _OpaqueDecoder(decoder), 3, 0.06, shots=50, seed=13
            )
            assert routed.logical_failures == inline.logical_failures
            assert service.stats()["simulations"] == 1
        finally:
            service.shutdown()

    def test_repeat_invocation_hits_cache_and_shows_in_stats(self):
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "x")
        service = self._service()
        try:
            first = logical_error_rate(
                code, decoder, 2, 0.05, shots=40, seed=9, service=service
            )
            again = logical_error_rate(
                code, decoder, 2, 0.05, shots=40, seed=9, service=service
            )
            stats = service.stats()
            assert again.logical_failures == first.logical_failures
            assert stats["simulations"] == 1
            assert stats["cache_hits"] == 1
            assert stats["jobs_submitted"] == 2
        finally:
            service.shutdown()

    def test_default_service_surfaces_qec_executions(self):
        """Acceptance criterion: logical_error_rate shows up in
        default_service().stats() with cache hits on repeat invocation."""
        from repro.quantum.execution import ExecutionService, set_default_service

        service = ExecutionService(max_workers=2)
        set_default_service(service)
        try:
            code = SurfaceCode(3)
            decoder = MWPMDecoder(code, "x")
            logical_error_rate(code, decoder, 2, 0.04, shots=30, seed=21)
            assert service.stats()["simulations"] == 1
            logical_error_rate(code, decoder, 2, 0.04, shots=30, seed=21)
            assert service.stats()["simulations"] == 1
            assert service.stats()["cache_hits"] == 1
        finally:
            set_default_service(None)

    def test_threshold_sweep_issues_zero_duplicate_simulations(self):
        service = self._service()
        try:
            kwargs = dict(shots=25, seed=3, service=service)
            first = threshold_sweep(SurfaceCode, [3], [0.01, 0.05], **kwargs)
            sims = service.stats()["simulations"]
            assert sims == 2  # one per rate
            second = threshold_sweep(SurfaceCode, [3], [0.01, 0.05], **kwargs)
            assert second == first
            assert service.stats()["simulations"] == sims  # all cache hits
        finally:
            service.shutdown()

    def test_sweep_point_cache_coherent_with_direct_call(self):
        """A sweep point and a direct logical_error_rate at the sweep's
        derived seed share one cache entry."""
        from repro.utils.rng import derive_seed

        service = self._service()
        try:
            sweep = threshold_sweep(
                SurfaceCode, [3], [0.04], shots=30, seed=6, service=service
            )
            code = SurfaceCode(3)
            direct = logical_error_rate(
                code,
                MWPMDecoder(code, "x"),
                3,
                0.04,
                shots=30,
                seed=derive_seed(6, "threshold", 3),
                service=service,
            )
            assert sweep[3][0][1] == direct.logical_error_rate
            # Distinct SurfaceCode(3) objects hash to one spec fingerprint,
            # so the direct call is a cache hit, not a second simulation.
            assert service.stats()["simulations"] == 1
            assert service.stats()["cache_hits"] == 1
        finally:
            service.shutdown()

    def test_threshold_sweep_threads_p_meas_and_error_type(self):
        from repro.utils.rng import derive_seed

        service = self._service()
        try:
            threshold_sweep(
                SurfaceCode, [3], [0.04], shots=40, seed=5, service=service
            )
            perfect_meas = threshold_sweep(
                SurfaceCode,
                [3],
                [0.04],
                shots=40,
                seed=5,
                p_meas=0.0,
                service=service,
            )
            # Perfect measurement is a different experiment: a distinct cache
            # key (a second simulation), not a silently-pinned default...
            assert service.stats()["simulations"] == 2
            # ...and exactly the experiment a direct call with p_meas=0 runs.
            code = SurfaceCode(3)
            direct = logical_error_rate(
                code,
                MWPMDecoder(code, "x"),
                3,
                0.04,
                p_meas=0.0,
                shots=40,
                seed=derive_seed(5, "threshold", 3),
                service=service,
            )
            assert perfect_meas[3][0][1] == direct.logical_error_rate
            assert service.stats()["simulations"] == 2  # served from cache
            z_sweep = threshold_sweep(
                SurfaceCode,
                [3],
                [0.04],
                shots=40,
                seed=5,
                error_type="z",
                service=service,
            )
            assert 0.0 <= z_sweep[3][0][1] <= 1.0
            assert service.stats()["simulations"] == 3
        finally:
            service.shutdown()

    def test_per_distance_seed_scoping(self):
        """Adding a distance must not perturb another distance's series."""
        service = self._service()
        try:
            solo = threshold_sweep(
                SurfaceCode, [3], [0.03], shots=30, seed=2, service=service
            )
            paired = threshold_sweep(
                SurfaceCode, [3, 5], [0.03], shots=30, seed=2, service=service
            )
            assert paired[3] == solo[3]
        finally:
            service.shutdown()

    def test_suppression_factor_routes_through_service(self):
        service = self._service()
        try:
            code = SurfaceCode(3)
            factor = qec_suppression_factor(
                code,
                MWPMDecoder(code, "x"),
                p_data=0.02,
                shots=200,
                seed=2,
                service=service,
            )
            assert 0 < factor <= 1.0
            assert service.stats()["simulations"] == 1
        finally:
            service.shutdown()

    def test_spec_validation(self):
        code = SurfaceCode(3)
        with pytest.raises(QECError, match="round"):
            MemoryExperimentSpec(code, 0, 0.1, 0.1, "x", "mwpm")
        with pytest.raises(QECError, match="probabilities"):
            MemoryExperimentSpec(code, 1, 1.5, 0.1, "x", "mwpm")
        with pytest.raises(QECError, match="error_type"):
            MemoryExperimentSpec(code, 1, 0.1, 0.1, "y", "mwpm")
        with pytest.raises(QECError, match="decoder kind"):
            MemoryExperimentSpec(code, 1, 0.1, 0.1, "x", "magic")

    def test_spec_fingerprint_discriminates(self):
        code = SurfaceCode(3)
        base = MemoryExperimentSpec(code, 2, 0.05, 0.05, "x", "mwpm")
        assert base.fingerprint() == MemoryExperimentSpec(
            code, 2, 0.05, 0.05, "x", "mwpm"
        ).fingerprint()
        for other in (
            MemoryExperimentSpec(code, 3, 0.05, 0.05, "x", "mwpm"),
            MemoryExperimentSpec(code, 2, 0.06, 0.05, "x", "mwpm"),
            MemoryExperimentSpec(code, 2, 0.05, 0.0, "x", "mwpm"),
            MemoryExperimentSpec(code, 2, 0.05, 0.05, "z", "mwpm"),
            MemoryExperimentSpec(code, 2, 0.05, 0.05, "x", "unionfind"),
            MemoryExperimentSpec(SurfaceCode(5), 2, 0.05, 0.05, "x", "mwpm"),
        ):
            assert base.fingerprint() != other.fingerprint()

    def test_memory_backend_rejects_plain_circuits(self):
        from repro.quantum.circuit import QuantumCircuit
        from repro.quantum.execution import ExecutionService

        service = ExecutionService(max_workers=1)
        try:
            qc = QuantumCircuit(1, 1)
            qc.measure(0, 0)
            with pytest.raises(QECError, match="MemoryExperimentCircuit"):
                service.run(qc, backend=MEMORY_BACKEND, shots=10, seed=1).result()
        finally:
            service.shutdown()

    def test_unionfind_decoder_routes(self):
        from repro.qec.unionfind import UnionFindDecoder

        code = SurfaceCode(3)
        decoder = UnionFindDecoder(code, "x")
        service = self._service()
        try:
            routed = logical_error_rate(
                code, decoder, 2, 0.05, shots=40, seed=4, service=service
            )
            inline = logical_error_rate(
                code, _OpaqueDecoder(decoder), 2, 0.05, shots=40, seed=4
            )
            assert routed.logical_failures == inline.logical_failures
            assert service.stats()["simulations"] == 1
        finally:
            service.shutdown()

    def test_memory_flag_returns_per_shot_outcomes(self):
        from repro.quantum.execution import ExecutionService

        code = SurfaceCode(3)
        spec = MemoryExperimentSpec(code, 2, 0.08, 0.08, "x", "mwpm")
        service = ExecutionService(max_workers=1)
        try:
            result = service.run(
                MemoryExperimentCircuit(spec),
                backend=MEMORY_BACKEND,
                shots=30,
                seed=7,
                memory=True,
            ).result()
            bits = result.get_memory()
            assert len(bits) == 30
            assert set(bits) <= {"0", "1"}
            assert bits.count("1") == result.get_counts().get("1", 0)
        finally:
            service.shutdown()


class TestDecoderGeneration:
    def test_grid_device_succeeds_with_layout(self):
        generated = generate_decoder(CouplingMap.grid(5, 5), distance=3)
        assert isinstance(generated, GeneratedDecoder)
        assert len(generated.data_layout) == 9
        assert len(generated.ancilla_layout) == 8
        assert not generated.simulated_lattice
        # layout targets are distinct physical qubits
        placed = list(generated.data_layout.values()) + list(
            generated.ancilla_layout.values()
        )
        assert len(set(placed)) == len(placed)

    def test_grid_without_ancillas_needs_smaller_grid(self):
        generated = generate_decoder(
            CouplingMap.grid(3, 3), distance=3, include_ancillas=False
        )
        assert len(generated.data_layout) == 9

    def test_small_grid_rejected(self):
        with pytest.raises(TopologyError, match="smaller"):
            generate_decoder(CouplingMap.grid(3, 3), distance=3)

    def test_heavy_hex_rejected_with_diagnosis(self):
        with pytest.raises(TopologyError, match="topology-specific"):
            generate_decoder(CouplingMap.brisbane(), distance=3)

    def test_simulated_lattice_fallback(self):
        generated = generate_decoder(
            CouplingMap.brisbane(), distance=3, allow_simulated_lattice=True
        )
        assert generated.simulated_lattice
        assert generated.data_layout == {}

    def test_unknown_decoder_rejected(self):
        with pytest.raises(TopologyError, match="unknown decoder"):
            generate_decoder(CouplingMap.grid(5, 5), decoder="magic")

    def test_unionfind_decoder_option(self):
        from repro.qec.unionfind import UnionFindDecoder

        generated = generate_decoder(
            CouplingMap.grid(5, 5), distance=3, decoder="unionfind"
        )
        assert isinstance(generated.decoder_x, UnionFindDecoder)

    def test_compatible_with_models_topology_specificity(self):
        generated = generate_decoder(CouplingMap.grid(5, 5), distance=3)
        assert generated.compatible_with(CouplingMap.grid(5, 5))
        assert not generated.compatible_with(CouplingMap.grid(7, 7))
