"""Syndrome extraction (phenomenological + circuit-level) and experiments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QECError, TopologyError
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.surface import SurfaceCode
from repro.qec.decoder_gen import GeneratedDecoder, generate_decoder
from repro.qec.experiments import (
    average_qubit_lifetime_gain,
    logical_error_rate,
    qec_suppression_factor,
    threshold_sweep,
)
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import (
    extraction_circuit,
    run_extraction_on_tableau,
    sample_memory,
)
from repro.quantum.topology import CouplingMap


class TestPhenomenologicalSampling:
    def test_noiseless_run_has_no_events(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 4, 0.0, 0.0, rng)
        assert history.detection_events == []
        assert not history.true_error.any()

    def test_final_round_is_perfect(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 3, 0.1, 0.3, rng)
        expected = code.syndrome(history.true_error, "x")
        assert (history.syndromes[-1] == expected).all()

    def test_detection_events_are_syndrome_diffs(self, rng):
        code = SurfaceCode(3)
        history = sample_memory(code, 3, 0.08, 0.08, rng)
        rebuilt = set()
        prev = np.zeros(code.num_z_checks, dtype=bool)
        for t in range(history.rounds + 1):
            for c in np.flatnonzero(history.syndromes[t] ^ prev):
                rebuilt.add((t, int(c)))
            prev = history.syndromes[t]
        assert rebuilt == set(history.detection_events)

    def test_parameter_validation(self, rng):
        code = SurfaceCode(3)
        with pytest.raises(QECError):
            sample_memory(code, 0, 0.1, 0.1, rng)
        with pytest.raises(QECError):
            sample_memory(code, 1, 1.5, 0.1, rng)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_event_parity_is_even_or_boundary_matched(self, seed):
        """Within one shot, detection events of the bulk pair up modulo the
        boundary — i.e. decoding never encounters an unmatchable instance."""
        code = SurfaceCode(3)
        rng = np.random.default_rng(seed)
        history = sample_memory(code, 3, 0.05, 0.05, rng)
        decoder = MWPMDecoder(code, "x")
        result = decoder.decode(history)  # raises DecodingError if unmatched
        assert result is not None


class TestCircuitLevelExtraction:
    @pytest.mark.parametrize("error_type", ["x", "z"])
    def test_matches_algebraic_syndrome(self, error_type):
        code = SurfaceCode(3)
        rng = np.random.default_rng(3)
        for trial in range(8):
            errors = list(np.flatnonzero(rng.random(9) < 0.3))
            measured = run_extraction_on_tableau(
                code, errors, error_type, rng=np.random.default_rng(trial)
            )
            bits = np.zeros(9, dtype=bool)
            bits[errors] = True
            assert (measured == code.syndrome(bits, error_type)).all()

    def test_extraction_circuit_shape(self):
        code = SurfaceCode(3)
        qc = extraction_circuit(code, "x")
        assert qc.num_qubits == 9 + 4
        assert qc.count_ops()["measure"] == 4
        assert qc.count_ops()["reset"] == 4

    def test_bad_data_qubit_rejected(self):
        with pytest.raises(QECError):
            run_extraction_on_tableau(SurfaceCode(3), [100], "x")


class TestExperiments:
    def test_logical_error_rate_zero_noise(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.0, shots=20, seed=0
        )
        assert result.logical_error_rate == 0.0

    def test_high_noise_fails_often(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=3, p_data=0.3, shots=60, seed=0
        )
        assert result.logical_error_rate > 0.2

    def test_determinism(self):
        code = SurfaceCode(3)
        a = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.05, shots=40, seed=9
        )
        b = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=2, p_data=0.05, shots=40, seed=9
        )
        assert a.logical_failures == b.logical_failures

    def test_per_round_rate_inversion(self):
        code = SurfaceCode(3)
        result = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=4, p_data=0.05, shots=100, seed=1
        )
        per_round = result.logical_error_per_round
        assert 0 <= per_round <= result.logical_error_rate + 1e-9

    def test_suppression_factor_below_threshold(self):
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        assert 0 < factor < 1.0

    def test_suppression_factor_bounded_with_no_failures(self):
        """Zero observed failures must give a Wilson-bounded, nonzero factor."""
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.001, shots=30, seed=2
        )
        assert 0 < factor <= 1.0

    def test_lifetime_gain_inverse_of_suppression(self):
        code = SurfaceCode(3)
        factor = qec_suppression_factor(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        gain = average_qubit_lifetime_gain(
            code, MWPMDecoder(code, "x"), p_data=0.02, shots=300, seed=2
        )
        assert gain == pytest.approx(1.0 / factor)

    def test_threshold_sweep_shape(self):
        sweep = threshold_sweep(
            SurfaceCode, [3], [0.01, 0.1], shots=30, seed=3
        )
        assert set(sweep) == {3}
        rates = [p_l for _, p_l in sweep[3]]
        assert rates[1] >= rates[0]  # more noise, more failures

    def test_shot_validation(self):
        code = RepetitionCode(3)
        with pytest.raises(QECError):
            logical_error_rate(code, MWPMDecoder(code, "x"), 1, 0.1, shots=0)


class TestDecoderGeneration:
    def test_grid_device_succeeds_with_layout(self):
        generated = generate_decoder(CouplingMap.grid(5, 5), distance=3)
        assert isinstance(generated, GeneratedDecoder)
        assert len(generated.data_layout) == 9
        assert len(generated.ancilla_layout) == 8
        assert not generated.simulated_lattice
        # layout targets are distinct physical qubits
        placed = list(generated.data_layout.values()) + list(
            generated.ancilla_layout.values()
        )
        assert len(set(placed)) == len(placed)

    def test_grid_without_ancillas_needs_smaller_grid(self):
        generated = generate_decoder(
            CouplingMap.grid(3, 3), distance=3, include_ancillas=False
        )
        assert len(generated.data_layout) == 9

    def test_small_grid_rejected(self):
        with pytest.raises(TopologyError, match="smaller"):
            generate_decoder(CouplingMap.grid(3, 3), distance=3)

    def test_heavy_hex_rejected_with_diagnosis(self):
        with pytest.raises(TopologyError, match="topology-specific"):
            generate_decoder(CouplingMap.brisbane(), distance=3)

    def test_simulated_lattice_fallback(self):
        generated = generate_decoder(
            CouplingMap.brisbane(), distance=3, allow_simulated_lattice=True
        )
        assert generated.simulated_lattice
        assert generated.data_layout == {}

    def test_unknown_decoder_rejected(self):
        with pytest.raises(TopologyError, match="unknown decoder"):
            generate_decoder(CouplingMap.grid(5, 5), decoder="magic")

    def test_unionfind_decoder_option(self):
        from repro.qec.unionfind import UnionFindDecoder

        generated = generate_decoder(
            CouplingMap.grid(5, 5), distance=3, decoder="unionfind"
        )
        assert isinstance(generated.decoder_x, UnionFindDecoder)

    def test_compatible_with_models_topology_specificity(self):
        generated = generate_decoder(CouplingMap.grid(5, 5), distance=3)
        assert generated.compatible_with(CouplingMap.grid(5, 5))
        assert not generated.compatible_with(CouplingMap.grid(7, 7))
