"""Decoder contracts: MWPM, union-find, lookup.

The central invariant for every decoder: *the correction clears the
syndrome*.  The quality metric (no logical flip) is tested statistically and
exhaustively for small weights.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecodingError
from repro.qec.codes.repetition import RepetitionCode
from repro.qec.codes.steane import SteaneCode
from repro.qec.codes.surface import SurfaceCode
from repro.qec.lookup import LookupDecoder
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import sample_memory
from repro.qec.unionfind import UnionFindDecoder


def events_for(code, error_bits, error_type="x"):
    syndrome = code.syndrome(error_bits, error_type)
    return [(0, int(c)) for c in np.flatnonzero(syndrome)]


class TestMWPM:
    @pytest.mark.parametrize("d", [3, 5])
    def test_corrects_every_single_error(self, d):
        code = SurfaceCode(d)
        decoder = MWPMDecoder(code, "x")
        for q in range(code.num_data_qubits):
            error = np.zeros(code.num_data_qubits, dtype=bool)
            error[q] = True
            result = decoder.decode(events_for(code, error))
            residual = error ^ result.correction
            assert not code.syndrome(residual, "x").any()
            assert not code.logical_flipped(residual, "x"), q

    def test_corrects_every_weight2_error_d5(self):
        code = SurfaceCode(5)
        decoder = MWPMDecoder(code, "x")
        rng = np.random.default_rng(0)
        pairs = list(itertools.combinations(range(code.num_data_qubits), 2))
        for pair in rng.permutation(len(pairs))[:80]:
            error = np.zeros(code.num_data_qubits, dtype=bool)
            error[list(pairs[pair])] = True
            result = decoder.decode(events_for(code, error))
            residual = error ^ result.correction
            assert not code.syndrome(residual, "x").any()
            assert not code.logical_flipped(residual, "x"), pairs[pair]

    def test_empty_events_no_correction(self):
        code = SurfaceCode(3)
        result = MWPMDecoder(code, "x").decode([])
        assert not result.correction.any()
        assert result.weight == 0

    def test_z_error_decoding(self):
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "z")
        error = np.zeros(9, dtype=bool)
        error[4] = True
        syndrome = code.syndrome(error, "z")
        result = decoder.decode([(0, int(c)) for c in np.flatnonzero(syndrome)])
        residual = error ^ result.correction
        assert not code.syndrome(residual, "z").any()

    def test_decode_accepts_history(self, rng):
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "x")
        history = sample_memory(code, 3, 0.05, 0.05, rng)
        result = decoder.decode(history)
        residual = history.true_error ^ result.correction
        assert not code.syndrome(residual, "x").any()

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_property_correction_clears_syndrome(self, seed):
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "x")
        rng = np.random.default_rng(seed)
        history = sample_memory(code, 3, 0.06, 0.06, rng)
        result = decoder.decode(history)
        residual = history.true_error ^ result.correction
        assert not code.syndrome(residual, "x").any()

    def test_time_separated_events_matched(self):
        """Pure measurement error: one check fires in rounds t and t+1 diff.

        A measurement lie at round t creates detection events at (t, c) and
        (t+1, c); matching them together needs no data correction.
        """
        code = SurfaceCode(3)
        decoder = MWPMDecoder(code, "x")
        result = decoder.decode([(1, 0), (2, 0)])
        assert not result.correction.any()

    def test_repetition_code_majority_vote(self):
        code = RepetitionCode(5)
        decoder = MWPMDecoder(code, "x")
        error = np.array([True, True, False, False, False])
        result = decoder.decode(events_for(code, error))
        residual = error ^ result.correction
        assert not code.logical_flipped(residual, "x")


class TestUnionFind:
    @pytest.mark.parametrize("d", [3, 5])
    def test_corrects_every_single_error(self, d):
        code = SurfaceCode(d)
        decoder = UnionFindDecoder(code, "x")
        for q in range(code.num_data_qubits):
            error = np.zeros(code.num_data_qubits, dtype=bool)
            error[q] = True
            result = decoder.decode(events_for(code, error), rounds=0)
            residual = error ^ result.correction
            assert not code.syndrome(residual, "x").any(), q
            assert not code.logical_flipped(residual, "x"), q

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=25, deadline=None)
    def test_property_correction_clears_syndrome(self, seed):
        code = SurfaceCode(3)
        decoder = UnionFindDecoder(code, "x")
        rng = np.random.default_rng(seed)
        history = sample_memory(code, 3, 0.05, 0.05, rng)
        result = decoder.decode(history)
        residual = history.true_error ^ result.correction
        assert not code.syndrome(residual, "x").any()

    def test_empty_events(self):
        code = SurfaceCode(3)
        result = UnionFindDecoder(code, "x").decode([], rounds=0)
        assert not result.correction.any()
        assert result.cluster_count == 0

    def test_pure_measurement_error_needs_no_data_correction(self):
        code = SurfaceCode(3)
        decoder = UnionFindDecoder(code, "x")
        result = decoder.decode([(1, 2), (2, 2)], rounds=3)
        assert not result.correction.any()


class TestLookup:
    def test_steane_corrects_all_single_errors(self):
        code = SteaneCode()
        decoder = LookupDecoder(code, "x")
        for q in range(7):
            error = np.zeros(7, dtype=bool)
            error[q] = True
            correction = decoder.decode(code.syndrome(error, "x"))
            assert (correction == error).all()

    def test_repetition_majority(self):
        code = RepetitionCode(5)
        decoder = LookupDecoder(code, "x")
        error = np.array([True, False, True, False, False])
        correction = decoder.decode(code.syndrome(error, "x"))
        residual = error ^ correction
        assert not code.syndrome(residual, "x").any()
        assert not code.logical_flipped(residual, "x")

    def test_strict_raises_outside_radius(self):
        code = RepetitionCode(3)
        decoder = LookupDecoder(code, "x", max_weight=0)
        with pytest.raises(DecodingError):
            decoder.decode(np.array([True, False]))

    def test_lenient_returns_zero(self):
        code = RepetitionCode(3)
        decoder = LookupDecoder(code, "x", max_weight=0, strict=False)
        assert not decoder.decode(np.array([True, False])).any()

    def test_no_checks_rejected(self):
        with pytest.raises(DecodingError):
            LookupDecoder(RepetitionCode(3), "z")

    def test_table_size_reasonable(self):
        decoder = LookupDecoder(SteaneCode(), "x")
        assert decoder.table_size == 8  # trivial + 7 single errors


class TestDecoderAgreement:
    def test_mwpm_and_unionfind_agree_on_logical_rate_regime(self):
        """Both decoders keep the logical error rate far below physical."""
        from repro.qec.experiments import logical_error_rate

        code = SurfaceCode(3)
        p = 0.01
        mwpm = logical_error_rate(
            code, MWPMDecoder(code, "x"), rounds=3, p_data=p, shots=150, seed=5
        )
        uf = logical_error_rate(
            code, UnionFindDecoder(code, "x"), rounds=3, p_data=p, shots=150, seed=5
        )
        assert mwpm.logical_error_rate < 0.1
        assert uf.logical_error_rate < 0.15
