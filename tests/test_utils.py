"""Utilities: deterministic RNG derivation, stats, ASCII tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import derive_rng, derive_seed, stable_hash
from repro.utils.stats import (
    binomial_confidence_interval,
    mean,
    total_variation_distance,
)
from repro.utils.tables import AsciiTable, format_histogram


class TestRng:
    def test_stable_hash_is_stable(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_scope_separation(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_no_concatenation_collision(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "x").random(3)
        b = derive_rng(7, "x").random(3)
        assert (a == b).all()

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=50, deadline=None)
    def test_seed_in_64bit_range(self, seed):
        assert 0 <= derive_seed(seed, "scope") < 2**64


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_wilson_interval_contains_estimate(self):
        low, high = binomial_confidence_interval(30, 100)
        assert low < 0.3 < high

    def test_wilson_edge_cases(self):
        assert binomial_confidence_interval(0, 0) == (0.0, 0.0)
        low, high = binomial_confidence_interval(0, 10)
        assert low == 0.0 and high > 0.0
        low, high = binomial_confidence_interval(10, 10)
        assert high == 1.0 and low < 1.0

    def test_tvd_identical(self):
        assert total_variation_distance({"a": 1}, {"a": 2}) == 0.0

    def test_tvd_disjoint(self):
        assert total_variation_distance({"a": 1}, {"b": 1}) == 1.0

    def test_tvd_normalises_counts(self):
        assert total_variation_distance(
            {"0": 50, "1": 50}, {"0": 5000, "1": 5000}
        ) == pytest.approx(0.0)

    def test_tvd_empty_is_max(self):
        assert total_variation_distance({}, {"a": 1}) == 1.0

    @given(
        p=st.dictionaries(st.sampled_from("abcd"), st.integers(1, 100), min_size=1),
        q=st.dictionaries(st.sampled_from("abcd"), st.integers(1, 100), min_size=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_tvd_is_metric_like(self, p, q):
        d = total_variation_distance(p, q)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(total_variation_distance(q, p))


class TestTables:
    def test_render_aligns(self):
        table = AsciiTable(["Name", "Value"], title="T")
        table.add_row(["a", 1])
        table.add_row(["longer-name", 22])
        rendered = table.render()
        assert "T" in rendered
        lines = rendered.splitlines()
        assert len({len(l) for l in lines[2:]}) <= 2  # header+rows aligned

    def test_row_width_checked(self):
        table = AsciiTable(["A"])
        with pytest.raises(ValueError):
            table.add_row(["x", "y"])

    def test_rows_copy(self):
        table = AsciiTable(["A"])
        table.add_row(["x"])
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "x"

    def test_histogram(self):
        out = format_histogram({"00": 75, "11": 25}, width=20, title="H")
        assert "H" in out
        assert "75.00%" in out
        assert out.count("#") > 20  # bars drawn

    def test_histogram_empty(self):
        assert "empty" in format_histogram({})

    def test_histogram_sort_by_value(self):
        out = format_histogram({"a": 1, "b": 9}, sort_by_key=False)
        assert out.splitlines()[0].strip().startswith("b")
