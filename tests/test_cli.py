"""CLI smoke tests."""

import pytest

from repro.cli import ARMS, EXPERIMENTS, main


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment():
    assert main(["run", "figure99"]) == 2


def test_unknown_arm():
    assert main(["eval", "vibes"]) == 2


def test_eval_arm_runs(capsys):
    assert main(["eval", "ft", "--samples", "1"]) == 0
    out = capsys.readouterr().out
    assert "Accuracy" in out and "ft" in out


def test_demo_runs(capsys):
    assert main(["demo", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "generated program" in out


def test_arms_cover_figure3():
    assert set(ARMS) == {"base", "ft", "rag", "cot", "scot", "mp3"}


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
