"""CLI smoke tests."""

import pytest

from repro.cli import ARMS, EXPERIMENTS, main


def test_experiments_listing(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment():
    assert main(["run", "figure99"]) == 2


def test_unknown_arm():
    assert main(["eval", "vibes"]) == 2


def test_eval_arm_runs(capsys):
    assert main(["eval", "ft", "--samples", "1"]) == 0
    out = capsys.readouterr().out
    assert "Accuracy" in out and "ft" in out


def test_eval_workers_bit_identical_to_serial(capsys):
    assert main(["eval", "ft", "--samples", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert (
        main(["eval", "ft", "--samples", "1", "--workers", "2", "--progress"])
        == 0
    )
    captured = capsys.readouterr()
    # Same table, byte for byte: the parallel engine is deterministic.
    assert captured.out == serial_out
    # The --progress meter renders on stderr, not in the table.
    assert "chunks" in captured.err


def test_demo_runs(capsys):
    assert main(["demo", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "generated program" in out


def test_eval_cache_dir_warm_starts_second_run(tmp_path, capsys):
    from repro.quantum.execution import set_default_service

    cache_dir = str(tmp_path / "exec-cache")
    try:
        assert main(
            ["eval", "ft", "--samples", "1", "--cache-dir", cache_dir,
             "--exec-stats"]
        ) == 0
        capsys.readouterr()
        # Second invocation replaces the default service (fresh counters, a
        # process restart stand-in); everything must come from the disk tier.
        assert main(
            ["eval", "ft", "--samples", "1", "--cache-dir", cache_dir,
             "--exec-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "service totals: 0 simulations" in out
        assert f"cache_dir={cache_dir}" in out
    finally:
        set_default_service(None)


def test_cache_command_reports_and_clears(tmp_path, capsys):
    cache_dir = str(tmp_path / "exec-cache")
    # Inspecting a nonexistent dir is an error, not a silent empty cache.
    assert main(["cache", "--cache-dir", cache_dir]) == 2
    assert "does not exist" in capsys.readouterr().out

    from repro.quantum.execution import ExecutionService
    from repro.quantum.library import bell_pair

    service = ExecutionService(max_workers=1, cache_dir=cache_dir)
    service.run(bell_pair(measure=True), shots=10, seed=1)
    service.shutdown()

    assert main(["cache", "--cache-dir", cache_dir]) == 0
    assert "1 entries" in capsys.readouterr().out
    assert main(["cache", "--cache-dir", cache_dir, "--clear"]) == 0
    assert "cleared 1 entries" in capsys.readouterr().out


def test_cache_prune_command(tmp_path, capsys):
    from repro.quantum.execution import CacheKey, DiskResultCache

    cache_dir = str(tmp_path / "exec-cache")
    disk = DiskResultCache(cache_dir)
    for tag in range(4):
        disk.put(
            CacheKey(
                circuit=f"{tag:016x}", backend="b", shots=1, seed=1,
                noise="ideal", memory=False,
            ),
            {"0": 1},
            None,
        )

    # No bounds anywhere: refuse rather than silently prune nothing.
    assert main(["cache", "--cache-dir", cache_dir, "--prune"]) == 2
    assert "nothing to prune" in capsys.readouterr().out

    assert main(
        ["cache", "--cache-dir", cache_dir, "--prune", "--max-entries", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "pruned 2 of 4 entries" in out
    assert len(DiskResultCache(cache_dir)) == 2


def test_eval_remote_cache_flag_makes_second_worker_warm(tmp_path, capsys):
    from repro.quantum.execution import CacheServer, set_default_service

    with CacheServer(tmp_path / "store") as server:
        try:
            assert main(
                ["eval", "ft", "--samples", "1", "--remote-cache", server.url,
                 "--exec-stats"]
            ) == 0
            capsys.readouterr()
            # Second invocation replaces the default service — a cold worker
            # on another machine; everything must come from the server.
            assert main(
                ["eval", "ft", "--samples", "1", "--remote-cache", server.url,
                 "--exec-stats"]
            ) == 0
            out = capsys.readouterr().out
            assert "service totals: 0 simulations" in out
            assert f"cache_url={server.url}" in out
        finally:
            set_default_service(None)


def test_eval_distributed_flag_byte_identical_to_serial(capsys):
    """--distributed spins an ephemeral coordinator around the run; with no
    workers attached the local fallback drains it and the printed table is
    byte-for-byte the serial one (announcements go to stderr)."""
    assert main(["eval", "ft", "--samples", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main(["eval", "ft", "--samples", "1", "--distributed",
                 "--port", "0"]) == 0
    captured = capsys.readouterr()
    assert captured.out == serial_out
    assert "eval-worker --url" in captured.err


def test_eval_server_matches_serial_eval_table(tmp_path, capsys):
    from repro.quantum.execution import DiskResultCache, set_default_service

    assert main(["eval", "ft", "--samples", "1"]) == 0
    serial_out = capsys.readouterr().out
    try:
        assert main(
            ["eval-server", "ft", "--samples", "1", "--dir", str(tmp_path),
             "--port", "0", "--fallback-workers", "2"]
        ) == 0
    finally:
        set_default_service(None, shutdown_previous=True)
    captured = capsys.readouterr()
    assert captured.out == serial_out
    assert "coordinator serving cache + work queue" in captured.err
    # The coordinator's own execution warms the store it serves (regression:
    # --dir used to be served to workers but ignored by the local service).
    assert len(DiskResultCache(tmp_path)) > 0


def test_eval_server_unknown_arm(tmp_path):
    assert main(["eval-server", "vibes", "--dir", str(tmp_path)]) == 2


def test_eval_worker_leases_and_completes_chunks(tmp_path, capsys):
    from repro.quantum.execution import EvalCoordinator, set_default_service
    from repro.quantum.execution.dispatch import encode_chunk

    with EvalCoordinator(
        tmp_path, fallback_workers=0, lease_timeout=5.0
    ) as coordinator:
        coordinator.queue.add_chunks(
            [encode_chunk(_triple, (i,)) for i in range(3)]
        )
        try:
            assert main(
                ["eval-worker", "--url", coordinator.url,
                 "--workers", "2", "--max-idle", "0.5",
                 "--poll-interval", "0.02"]
            ) == 0
        finally:
            set_default_service(None, shutdown_previous=True)
        assert "completed 3 chunk(s)" in capsys.readouterr().err
        assert coordinator.queue.status()["done"] == 3


def test_eval_worker_env_token_wiring(tmp_path, monkeypatch, capsys):
    """REPRO_CACHE_TOKEN authenticates a worker (and its cache tier) with no
    --token flag — the satellite's env-wiring guarantee."""
    from repro.quantum.execution import EvalCoordinator, set_default_service
    from repro.quantum.execution.dispatch import encode_chunk

    monkeypatch.setenv("REPRO_CACHE_TOKEN", "fleet-secret")
    with EvalCoordinator(
        tmp_path, token="fleet-secret", fallback_workers=0, lease_timeout=5.0
    ) as coordinator:
        coordinator.queue.add_chunks([encode_chunk(_triple, (14,))])
        try:
            assert main(
                ["eval-worker", "--url", coordinator.url,
                 "--max-idle", "0.5", "--poll-interval", "0.02"]
            ) == 0
        finally:
            set_default_service(None, shutdown_previous=True)
        assert coordinator.queue.status()["done"] == 1


def test_eval_worker_wrong_token_fails_loudly(tmp_path):
    from repro.errors import BackendError
    from repro.quantum.execution import EvalCoordinator, set_default_service

    with EvalCoordinator(
        tmp_path, token="fleet-secret", fallback_workers=0
    ) as coordinator:
        try:
            with pytest.raises(BackendError, match="credentials"):
                main(
                    ["eval-worker", "--url", coordinator.url,
                     "--token", "wrong", "--no-remote-cache",
                     "--max-idle", "5"]
                )
        finally:
            set_default_service(None, shutdown_previous=True)


def _triple(x):
    return x * 3


def test_cache_command_without_dir(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache"]) == 2
    assert "REPRO_CACHE_DIR" in capsys.readouterr().out


def test_arms_cover_figure3():
    assert set(ARMS) == {"base", "ft", "rag", "cot", "scot", "mp3"}


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


# -- repro lint --------------------------------------------------------------

CLEAN_QASM = """\
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
"""

# A conditional gate on a clbit no measurement ever writes: QA102.
DEFECTIVE_QASM = """\
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
if(c==1) x q[1];
"""


def test_lint_clean_qasm_file(tmp_path, capsys):
    path = tmp_path / "bell.qasm"
    path.write_text(CLEAN_QASM)
    assert main(["lint", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"{path}: ok" in out
    assert "0 error(s)" in out


def test_lint_defective_qasm_fails_with_coded_diagnostic(tmp_path, capsys):
    path = tmp_path / "broken.qasm"
    path.write_text(DEFECTIVE_QASM)
    assert main(["lint", str(path)]) == 1
    out = capsys.readouterr().out
    assert f"{path}: FAIL" in out
    assert "QA102" in out


def test_lint_verbose_shows_info_diagnostics(tmp_path, capsys):
    path = tmp_path / "bell.qasm"
    path.write_text(CLEAN_QASM)
    assert main(["lint", str(path)]) == 0
    assert "QA301" not in capsys.readouterr().out
    assert main(["lint", "--verbose", str(path)]) == 0
    assert "QA301" in capsys.readouterr().out


def test_lint_unreadable_file_is_an_error(tmp_path, capsys):
    assert main(["lint", str(tmp_path / "missing.qasm")]) == 1
    out = capsys.readouterr().out
    assert "cannot read" in out


def test_lint_unparsable_qasm_is_an_error(tmp_path, capsys):
    path = tmp_path / "bad.qasm"
    path.write_text("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n")
    assert main(["lint", str(path)]) == 1
    assert "QASM parse failed" in capsys.readouterr().out


def test_lint_suite_references_are_clean(capsys):
    assert main(["lint", "--suite"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_lint_single_task(capsys):
    from repro.evalsuite import build_suite

    case_id = build_suite()[0].case_id
    assert main(["lint", "--task", case_id]) == 0
    assert case_id in capsys.readouterr().out


def test_lint_unknown_task(capsys):
    assert main(["lint", "--task", "no-such-case"]) == 2
    assert "unknown task" in capsys.readouterr().out


def test_lint_without_inputs_is_usage_error(capsys):
    assert main(["lint"]) == 2
    assert "nothing to lint" in capsys.readouterr().out


def test_eval_validate_flag_accepted(capsys):
    from repro.quantum.execution import set_default_service

    try:
        assert main(
            ["eval", "ft", "--samples", "1", "--validate", "strict"]
        ) == 0
        out = capsys.readouterr().out
        assert "Accuracy" in out
    finally:
        set_default_service(None, shutdown_previous=True)


def test_backends_reports_validation_counters(capsys):
    from repro.quantum.execution import set_default_service

    try:
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "validate=" in out
        assert "validated" in out
    finally:
        set_default_service(None, shutdown_previous=True)


def test_transpile_command_miss_then_cache_hit(capsys):
    from repro.quantum.execution import set_default_service

    try:
        set_default_service(None, shutdown_previous=True)  # fresh memory tier
        assert main(["transpile", "ghz", "--qubits", "3"]) == 0
        first = capsys.readouterr().out
        assert "from pass manager" in first
        assert "level 1" in first
        assert "layout" in first and "final" in first
        assert main(["transpile", "ghz", "--qubits", "3"]) == 0
        second = capsys.readouterr().out
        assert "from cache" in second
    finally:
        set_default_service(None, shutdown_previous=True)


def test_transpile_explain_lists_every_pass(capsys):
    from repro.quantum.execution import set_default_service

    try:
        assert main([
            "transpile", "bell", "--backend", "fake_falcon",
            "--level", "2", "--explain",
        ]) == 0
        out = capsys.readouterr().out
        assert "fake_falcon" in out
        for name in (
            "DecomposeToBasis", "DenseLayout", "Route",
            "DropBarriers", "MergeRotations", "CancelInverses",
        ):
            assert name in out
        # The table carries per-pass instruction-count deltas and timings.
        assert "delta" in out and "ms" in out
    finally:
        set_default_service(None, shutdown_previous=True)


def test_transpile_unknown_backend_is_a_usage_error(capsys):
    assert main(["transpile", "ghz", "--backend", "nope"]) == 2
    assert "error:" in capsys.readouterr().out


def test_eval_opt_level_flag(capsys):
    assert main([
        "eval", "ft", "--samples", "1", "--opt-level", "0", "--exec-stats"
    ]) == 0
    out = capsys.readouterr().out
    assert "Accuracy" in out
    assert "transpiles" in out and "transpile cache hits" in out
