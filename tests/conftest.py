"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.quantum.backend import LocalSimulator


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def simulator():
    return LocalSimulator()


def counts_close(counts: dict, expected: dict, tolerance: float = 0.05) -> bool:
    """True when two counts/probability dicts agree within ``tolerance`` TVD."""
    total_a = sum(counts.values())
    total_b = sum(expected.values())
    keys = set(counts) | set(expected)
    tvd = 0.5 * sum(
        abs(counts.get(k, 0) / total_a - expected.get(k, 0) / total_b)
        for k in keys
    )
    return tvd <= tolerance
