"""Surface-code threshold exploration with the QEC substrate.

Sweeps physical error rates across code distances and prints the
logical-vs-physical curves whose crossing is the threshold — the quantitative
backbone behind the paper's Section V-B "reduce the amount of error" claim.

The sweep runs through the shared ExecutionService: every (distance, rate)
point is an asynchronous, cacheable job on the ``qec_memory`` backend.  Pass
``--cache-dir DIR`` and run the script twice — the second run performs zero
memory-experiment simulations, it is replayed entirely from the persistent
result cache.  ``--executor process`` fans the decoding shots across worker
processes instead of GIL-bound threads.

Run:  python examples/surface_code_threshold.py [--quick]
          [--cache-dir DIR] [--executor thread|process]
"""

import sys

from repro.qec.codes.surface import SurfaceCode
from repro.qec.experiments import threshold_sweep
from repro.quantum.execution import ExecutionService, set_default_service
from repro.utils.tables import AsciiTable


def _flag_value(argv: list[str], flag: str) -> str | None:
    if flag in argv:
        index = argv.index(flag)
        if index + 1 < len(argv):
            return argv[index + 1]
    return None


def main(quick: bool = False) -> None:
    cache_dir = _flag_value(sys.argv, "--cache-dir")
    executor = _flag_value(sys.argv, "--executor") or "thread"
    service = ExecutionService(cache_dir=cache_dir, executor=executor)
    set_default_service(service)

    distances = [3, 5] if quick else [3, 5, 7]
    rates = [0.005, 0.01, 0.02, 0.04, 0.08] if not quick else [0.01, 0.04]
    shots = 80 if quick else 300
    print(
        f"Phenomenological memory experiment, MWPM decoder, rounds = distance, "
        f"{shots} shots per point.\n"
    )
    sweep = threshold_sweep(
        SurfaceCode, distances, rates, shots=shots, seed=1, service=service
    )
    table = AsciiTable(
        ["p_physical"] + [f"d={d}" for d in distances],
        title="Logical error rate by distance (crossing ~ threshold)",
    )
    for i, p in enumerate(rates):
        row = [f"{p:.3f}"]
        for d in distances:
            row.append(f"{sweep[d][i][1]:.3f}")
        table.add_row(row)
    print(table.render())
    print(
        "\nBelow threshold (~3% for this noise model) larger distances win; "
        "above it they lose — the defining signature of a QEC code."
    )
    stats = service.stats()
    print(
        f"\nexecution service [{stats.get('executor')}]: "
        f"{stats.get('simulations', 0)} memory-experiment simulations, "
        f"{stats.get('cache_hits', 0)} cache hits "
        f"({stats.get('cache_disk_hits', 0)} from disk)"
        + (
            f" — persisted under {stats['cache_dir']}; a repeat run "
            "simulates nothing"
            if "cache_dir" in stats
            else " — pass --cache-dir DIR to persist results across runs"
        )
    )
    service.shutdown()


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
