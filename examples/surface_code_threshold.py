"""Surface-code threshold exploration with the QEC substrate.

Sweeps physical error rates across code distances and prints the
logical-vs-physical curves whose crossing is the threshold — the quantitative
backbone behind the paper's Section V-B "reduce the amount of error" claim.

Run:  python examples/surface_code_threshold.py [--quick]
"""

import sys

from repro.qec.codes.surface import SurfaceCode
from repro.qec.experiments import threshold_sweep
from repro.utils.tables import AsciiTable


def main(quick: bool = False) -> None:
    distances = [3, 5] if quick else [3, 5, 7]
    rates = [0.005, 0.01, 0.02, 0.04, 0.08] if not quick else [0.01, 0.04]
    shots = 80 if quick else 300
    print(
        f"Phenomenological memory experiment, MWPM decoder, rounds = distance, "
        f"{shots} shots per point.\n"
    )
    sweep = threshold_sweep(
        SurfaceCode, distances, rates, shots=shots, seed=1
    )
    table = AsciiTable(
        ["p_physical"] + [f"d={d}" for d in distances],
        title="Logical error rate by distance (crossing ~ threshold)",
    )
    for i, p in enumerate(rates):
        row = [f"{p:.3f}"]
        for d in distances:
            row.append(f"{sweep[d][i][1]:.3f}")
        table.add_row(row)
    print(table.render())
    print(
        "\nBelow threshold (~3% for this noise model) larger distances win; "
        "above it they lose — the defining signature of a QEC code."
    )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
