"""Multi-agent quantum code generation on the paper's hardest prompts.

Drives the full Figure-1 pipeline (code generator + semantic analyzer with
multi-pass repair) over one prompt per difficulty tier, comparing a plain
fine-tuned model against SCoT prompting — the paper's strongest technique —
and printing the full agent transcripts, error traces and repairs.

Run:  python examples/multi_agent_codegen.py
"""

from repro.agents import Orchestrator
from repro.evalsuite.suite import build_suite
from repro.llm import make_model

PROMPT_IDS = ["basic-03", "inter-08", "adv-05"]  # bell / grover / QPE


def run_arm(label: str, prompt_style: str) -> None:
    print("=" * 72)
    print(f"Arm: {label}")
    orchestrator = Orchestrator(
        model=make_model(fine_tuned=True, prompt_style=prompt_style),
        max_passes=3,
    )
    tasks = {t.case_id: t for t in build_suite()}
    for case_id in PROMPT_IDS:
        task = tasks[case_id]
        artifact = orchestrator.run_episode(
            task.case.text,
            params=dict(task.case.params),
            reference_code=task.reference_code,
            checker=task.checker,
            seed=42,
        )
        verdict = "PASS" if artifact.accepted else "FAIL"
        print(f"\n[{case_id} / {task.tier}] {verdict} "
              f"({artifact.refinement.passes_used} pass(es))")
        print(f"  prompt: {task.case.text[:70]}...")
        for i, report in enumerate(artifact.refinement.pass_reports, start=1):
            status = (
                "syntax error: " + report.execution.trace.splitlines()[-1]
                if not report.syntactic_ok
                else report.detail or "ok"
            )
            print(f"  pass {i}: {status[:90]}")
        if artifact.refinement.repair_log:
            print(f"  repairs attempted: {len(artifact.refinement.repair_log)}")


def main() -> None:
    run_arm("fine-tuned, plain prompts", "plain")
    run_arm("fine-tuned + SCoT (the paper's best technique)", "scot")


if __name__ == "__main__":
    main()
