"""Distributed evaluation smoke: 1 coordinator + 1 worker on localhost.

The whole fleet protocol in one process, asserting the two guarantees the
distributed tier makes (CI runs this as a blocking smoke job):

1. **bit-identical results** — an arm evaluated through a coordinator and a
   remote-style eval worker reproduces the serial runner's outcomes exactly;
2. **zero simulations against a warm cache server** — the coordinator serves
   the cache *and* the work queue on one port (one shared token), so a cold
   worker pointed at a warm store executes every episode without simulating
   a single circuit.

In production the pieces run standalone:

    repro eval-server scot --dir /var/cache/repro --port 8751 --token S
    repro eval-worker --url http://coordinator:8751 --token S --workers 4

Run:  python examples/distributed_eval.py
"""

import tempfile
import threading
from pathlib import Path

from repro.evalsuite import PipelineSettings, build_suite, evaluate
from repro.llm.faults import ModelConfig
from repro.quantum.execution import (
    EvalCoordinator,
    ExecutionService,
    RemoteResultCache,
    ResultCache,
    run_worker,
    set_default_service,
)

TOKEN = "fleet-smoke-token"


def main() -> None:
    store = Path(tempfile.mkdtemp(prefix="repro-dist-")) / "store"
    bank = build_suite()[:4]
    settings = PipelineSettings(
        ModelConfig("3b", True), samples_per_task=1, label="smoke"
    )

    # Phase 1: the serial reference run also warms the store the
    # coordinator will serve (its disk tier IS the served directory).
    set_default_service(ExecutionService(cache_dir=store))
    serial = evaluate(settings, bank, workers=1)
    print(
        f"serial reference: accuracy {serial.accuracy():.1%}, "
        f"{serial.execution_stats['simulations']} simulations "
        f"(store warmed: {store})"
    )

    # Phase 2: coordinator (cache + work queue, token-authed) plus one
    # worker whose only cache tier is the coordinator itself — a cold
    # machine in a warm fleet.  Local fallback is disabled so every chunk
    # provably travels the wire.
    coordinator = EvalCoordinator(
        store, token=TOKEN, fallback_workers=0, lease_timeout=10.0
    ).start()
    print(f"coordinator at {coordinator.url} (token auth on)")
    set_default_service(
        ExecutionService(
            cache=ResultCache(
                remote=RemoteResultCache(coordinator.url, token=TOKEN)
            )
        ),
        shutdown_previous=True,
    )
    stop = threading.Event()
    worker = threading.Thread(
        target=run_worker,
        args=(coordinator.url,),
        kwargs=dict(
            token=TOKEN, workers=1, poll_interval=0.05,
            heartbeat_interval=0.5, stop=stop, worker_id="smoke-worker",
        ),
        daemon=True,
    )
    worker.start()
    try:
        remote = evaluate(settings, bank, coordinator=coordinator)
    finally:
        stop.set()
        worker.join(timeout=10)
        coordinator.stop()
        set_default_service(None, shutdown_previous=True)

    status = coordinator.queue.status()
    print(
        f"distributed run:  accuracy {remote.accuracy():.1%}, "
        f"{remote.execution_stats['simulations']} simulations, "
        f"{remote.execution_stats['cache_remote_hits']} remote hits, "
        f"{status['done']}/{status['total']} chunks via "
        f"{status['workers']} worker(s)"
    )

    identical = [
        (o.case_id, o.syntactic_successes, o.full_successes,
         tuple(o.passes_used))
        for o in serial.outcomes
    ] == [
        (o.case_id, o.syntactic_successes, o.full_successes,
         tuple(o.passes_used))
        for o in remote.outcomes
    ]
    assert identical, "distributed outcomes diverged from the serial runner"
    assert status["done"] == status["total"] == len(bank), (
        "coordinator did not fold every chunk"
    )
    assert status["workers"] >= 1, "no remote worker ever attached"
    assert remote.execution_stats["simulations"] == 0, (
        "a cold worker against a warm cache server must simulate nothing, "
        f"got {remote.execution_stats['simulations']}"
    )
    print("results bit-identical across the fleet: True")
    print("zero simulations against the warm cache server: True")


if __name__ == "__main__":
    main()
