"""Fault-tolerant Deutsch-Jozsa: the paper's Figure-4 scenario as a script.

Generates the DJ circuit, runs it on the noisy Brisbane-class device, asks
the QEC agent for a decoder, and compares the measurement histograms before
and after error correction — including the decoder trace on a sampled
syndrome (Figure 2's view of the same machinery).

Run:  python examples/fault_tolerant_dj.py
"""

import numpy as np

from repro.agents import QECAgent
from repro.qec.syndrome import sample_memory
from repro.quantum import default_service, get_backend, transpile
from repro.quantum.library import deutsch_jozsa
from repro.utils.tables import format_histogram

SHOTS = 4096
SEED = 9


def main() -> None:
    backend = get_backend("fake_brisbane")
    service = default_service()
    circuit = deutsch_jozsa(3, "constant0")
    transpiled = transpile(circuit, backend=backend)
    print(f"DJ constant oracle: {circuit.size()} ops -> "
          f"{transpiled.size()} after transpilation for {backend.name}")

    noisy_job = service.submit(transpiled, backend=backend, shots=SHOTS, seed=SEED)
    noisy = noisy_job.result().get_counts()
    print()
    print(format_histogram(noisy, title="(b) noisy Brisbane run — expect |000>"))

    agent = QECAgent(distance=3, shots=300, seed=SEED)
    application = agent.apply(backend, allow_simulated_lattice=True)
    print(
        f"\nQEC agent: d={application.distance} surface code, physical error "
        f"rate {application.physical_error_rate:.4f}, suppression factor "
        f"{application.suppression_factor:.3f} "
        f"(lifetime x{application.lifetime_gain:.1f})"
    )

    # A peek inside the decoder (Figure 2): one noisy syndrome history.
    code = application.decoder.code
    history = sample_memory(
        code, rounds=3, p_data=application.physical_error_rate * 4,
        p_meas=application.physical_error_rate * 4,
        rng=np.random.default_rng(SEED), error_type="x",
    )
    result = application.decoder.decoder_x.decode(history)
    print(
        f"sampled syndrome: {len(history.detection_events)} detection events "
        f"-> corrections on data qubits "
        f"{sorted(int(q) for q in np.flatnonzero(result.correction))}"
    )

    corrected = (
        service.submit(
            transpiled,
            backend=application.corrected_backend,
            shots=SHOTS,
            seed=SEED,
        )
        .result()
        .get_counts()
    )
    print()
    print(format_histogram(corrected, title="(c) after QEC corrections"))

    p_before = noisy.get("000", 0) / SHOTS
    p_after = corrected.get("000", 0) / SHOTS
    print(
        f"\nP(|000>): {p_before:.3f} -> {p_after:.3f}  "
        f"(error mass shrank {(p_after - p_before) / (1 - p_before):.0%})"
    )


if __name__ == "__main__":
    main()
