"""Quickstart: the three layers of the library in ~60 lines.

1. the quantum SDK (circuits, simulators, devices),
2. the multi-agent code-generation pipeline,
3. the QEC agent attaching error correction to a run.

Run:  python examples/quickstart.py
"""

from repro.agents import Orchestrator, QECAgent
from repro.llm import make_model, synthesize
from repro.quantum import QuantumCircuit, default_service, get_backend, transpile
from repro.utils.tables import format_histogram


def layer_1_quantum_sdk() -> None:
    print("=" * 70)
    print("Layer 1: the quantum SDK")
    qc = QuantumCircuit(2, 2)
    qc.h(0)
    qc.cx(0, 1)
    qc.measure([0, 1], [0, 1])
    service = default_service()
    job = service.submit(qc, backend=get_backend("ideal"), shots=1000, seed=7)
    print(format_histogram(
        job.result().get_counts(), title="Bell pair on the ideal simulator"
    ))

    backend = get_backend("fake_brisbane")
    tqc = transpile(qc, backend=backend)
    noisy = service.submit(tqc, backend=backend, shots=1000, seed=7)
    print(format_histogram(
        noisy.result().get_counts(), title="Same circuit on noisy FakeBrisbane"
    ))


def layer_2_multi_agent() -> None:
    print("=" * 70)
    print("Layer 2: multi-agent code generation (generate -> analyze -> repair)")
    orchestrator = Orchestrator(
        model=make_model(fine_tuned=True, prompt_style="scot"), max_passes=3
    )
    reference = synthesize("bell", {}, "correct")
    artifact = orchestrator.run_episode(
        "Create a Bell state (the Phi+ EPR pair) on two qubits, measure both "
        "qubits, and run the circuit on a simulator.",
        reference_code=reference,
        seed=3,
    )
    print("Episode transcript:")
    print(artifact.log.render())
    print(f"\nAccepted: {artifact.accepted} "
          f"(passes used: {artifact.refinement.passes_used})")
    print("Final generated program:")
    print(artifact.code)


def layer_3_qec() -> None:
    print("=" * 70)
    print("Layer 3: the QEC agent (decoder generation + corrected execution)")
    backend = get_backend("fake_brisbane")
    agent = QECAgent(distance=3, shots=200)
    application = agent.apply(backend, allow_simulated_lattice=True)
    print(
        f"Generated a distance-3 surface-code decoder for '{backend.name}'.\n"
        f"Noise suppression factor: {application.suppression_factor:.3f} "
        f"(average qubit lifetime x{application.lifetime_gain:.1f})."
    )
    stats = default_service().stats()
    print(
        f"\nExecution service saw all of the above: "
        f"{stats.get('simulations', 0)} simulations, "
        f"{stats.get('cache_hits', 0)} cache hits — including the QEC "
        "memory experiment, which runs on the 'qec_memory' backend.\n"
        "Tip: set REPRO_CACHE_DIR=.repro-cache (or pass "
        "ExecutionService(cache_dir=...)) and a second run of this script "
        "is served from the persistent cache with zero simulations."
    )


if __name__ == "__main__":
    layer_1_quantum_sdk()
    layer_2_multi_agent()
    layer_3_qec()
