"""Inspecting the RAG pipeline: chunking, retrieval, prompt augmentation.

Shows why documentation RAG fixes the stale-API error class: the augmented
prompt carries the migration notes, and the chunking strategy decides whether
those notes survive intact (the paper's Section V-C caveat).

Run:  python examples/rag_inspection.py
"""

from repro.rag import Retriever, code_aware_chunks, naive_chunks
from repro.rag.docs import API_DOCS

QUERY = "run my circuit on a backend with execute and get the counts"


def show_retrieval() -> None:
    print("=" * 70)
    print(f"Query: {QUERY!r}\n")
    retriever = Retriever(strategy="naive")
    for hit in retriever.retrieve(QUERY, top_k=3):
        first_line = hit.chunk.text.strip().splitlines()[0]
        print(f"  score {hit.score:.3f}  [{hit.chunk.doc_id}]  {first_line[:60]}")
    print("\nPinned API context adds the migration notes even when the "
          "prompt-driven hits miss them:")
    for text in retriever.retrieve_context(QUERY)[-2:]:
        print("  *", text.strip().splitlines()[0][:70])


def compare_chunking() -> None:
    print("=" * 70)
    print("Chunking the 'execution' doc page both ways:\n")
    text = API_DOCS["execution"]
    naive = naive_chunks("execution", text, size=400)
    aware = code_aware_chunks("execution", text, max_size=600)
    print(f"naive fixed-size windows: {len(naive)} chunks")
    for c in naive:
        severed = "was removed" in c.text and "use" not in c.text
        print(f"  [{c.start:4d}] {c.text.strip().splitlines()[0][:55]!r}"
              + ("   <- migration note severed!" if severed else ""))
    print(f"\ncode-aware boundaries: {len(aware)} chunks")
    for c in aware:
        print(f"  [{c.start:4d}] {c.text.strip().splitlines()[0][:55]!r}")


def show_augmented_prompt() -> None:
    print("=" * 70)
    retriever = Retriever()
    augmented = retriever.augment_prompt("Create a Bell state and measure it")
    print("Augmented prompt (truncated):\n")
    print(augmented[:700])
    print("...")


if __name__ == "__main__":
    show_retrieval()
    compare_chunking()
    show_augmented_prompt()
