"""Fleet-scale result sharing: one cache server, many workers.

Starts a `repro cache-server` equivalent in-process (ephemeral port), then
simulates a two-machine fleet:

1. worker A (its own empty disk cache, pointed at the server) executes a
   deterministic workload — every result is simulated once and uploaded;
2. worker B (a *cold* machine: fresh process stand-in, no local cache at
   all) runs the identical workload — and performs **zero** simulations,
   because every lookup falls through memory -> (no disk) -> remote and hits
   the shared store;
3. the server's own disk store is bounded with `CacheLimits`, so long-lived
   fleets never grow it without bound.

In production the server runs standalone:

    repro cache-server --dir /var/cache/repro --port 8750 --max-bytes 100000000
    REPRO_CACHE_URL=http://cachehost:8750 repro eval scot --exec-stats

``REPRO_EXECUTOR`` is honoured (e.g. ``REPRO_EXECUTOR=batch`` routes worker
A's cold misses through the vectorised batch engine — results stay
bit-identical, so worker B's warm lookups still hit).

Run:  python examples/fleet_cache.py
"""

import tempfile
from pathlib import Path

from repro.quantum import QuantumCircuit
from repro.quantum.execution import (
    CacheLimits,
    CacheServer,
    ExecutionService,
    executor_from_env,
)


def workload() -> list[QuantumCircuit]:
    circuits = []
    for marked in range(4):
        qc = QuantumCircuit(2, 2)
        qc.h(0)
        qc.cx(0, 1)
        if marked & 1:
            qc.x(0)
        if marked & 2:
            qc.z(1)
        qc.measure([0, 1], [0, 1])
        circuits.append(qc)
    return circuits


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-fleet-"))
    server = CacheServer(
        root / "server-store",
        limits=CacheLimits(max_bytes=1_000_000, max_entries=10_000),
    ).start()
    print(f"cache server listening at {server.url} (store: {server.disk.cache_dir})")

    executor = executor_from_env()
    worker_a = ExecutionService(
        max_workers=2, cache_dir=root / "worker-a", remote_url=server.url,
        executor=executor,
    )
    counts_a = worker_a.submit(workload(), shots=500, seed=11).result(timeout=60)
    stats_a = worker_a.stats()
    print(
        f"\nworker A (cold fleet): {stats_a['simulations']} simulations, "
        f"{stats_a['cache_remote_hits']} remote hits — it paid for the work "
        "and published the results"
    )
    print(
        f"worker A executor={stats_a['executor']}: "
        f"simulations_batched={stats_a['simulations_batched']}, "
        f"batch_groups={stats_a['batch_groups']}"
    )
    worker_a.shutdown()

    # Worker B has *no* local cache at all — a freshly provisioned machine.
    worker_b = ExecutionService(
        max_workers=2, remote_url=server.url, executor=executor
    )
    counts_b = worker_b.submit(workload(), shots=500, seed=11).result(timeout=60)
    stats_b = worker_b.stats()
    print(
        f"worker B (warm fleet):  {stats_b['simulations']} simulations, "
        f"{stats_b['cache_remote_hits']} remote hits — everything downloaded"
    )
    identical = all(
        counts_a.get_counts(i) == counts_b.get_counts(i) for i in range(4)
    )
    print(f"results bit-identical across the fleet: {identical}")
    print(f"server store: {len(server.disk)} entries, "
          f"{server.disk.size_bytes()} bytes (bounded by {server.disk.limits})")
    worker_b.shutdown()
    server.stop()


if __name__ == "__main__":
    main()
