"""Multi-tenant serving smoke: API keys, fair-share lanes, /metrics, resume.

Two tenants share one coordinator (CI runs this as a blocking smoke job):

1. **fair-share lanes** — alice (priority 2) and bob submit concurrent
   batches; both drain through one fleet worker without either starving;
2. **per-tenant admission** — tenant API keys authenticate every endpoint,
   and bob's tight rate limit answers 429 + ``Retry-After``, which the
   dispatch client honors with a bounded pause instead of an error;
3. **/metrics** — one scrape (tenant-key authed) exports every service,
   queue, job-store, and per-tenant counter in Prometheus text format;
4. **restart-resume** — a coordinator killed after persisting one outcome
   restarts from its job store and re-executes only the unfinished chunks.

In production the pieces run standalone:

    repro eval-server scot --dir /var/cache/repro --port 8751 \\
        --tenant-file tenants.json
    repro eval-worker --url http://coordinator:8751 --token alice-key

Run:  python examples/multi_tenant_fleet.py
"""

import json
import re
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

from repro.quantum.execution import (
    EvalCoordinator,
    ExecutionService,
    JobStore,
    load_tenants,
    run_worker,
)
from repro.quantum.execution.dispatch import (
    DispatchClient,
    encode_chunk,
    run_chunk_payload,
)


def simulate_episode(x: int) -> int:
    """Stand-in for the eval engine's task chunk: deterministic, picklable."""
    return x * x


def scrape_metrics(url: str, key: str) -> str:
    request = urllib.request.Request(
        f"{url}/metrics", headers={"Authorization": f"Bearer {key}"}
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        return response.read().decode("utf-8")


def tenant_counter(body: str, name: str, tenant: str) -> int:
    match = re.search(
        rf'^{name}{{tenant="{tenant}"}} (\d+)$', body, re.MULTILINE
    )
    return int(match.group(1)) if match else 0


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-tenants-"))
    tenant_file = root / "tenants.json"
    tenant_file.write_text(
        json.dumps(
            {
                "tenants": [
                    {"name": "alice", "key": "alice-key", "priority": 2},
                    {
                        "name": "bob",
                        "key": "bob-key",
                        "rate_per_sec": 2,
                        "burst": 2,
                    },
                ]
            },
            indent=2,
        )
    )
    registry = load_tenants(tenant_file)
    service = ExecutionService()
    coordinator = EvalCoordinator(
        root / "store",
        tenants=registry,
        service=service,
        job_store=root / "jobs",
        fallback_workers=0,
        lease_timeout=10.0,
    ).start()
    print(
        f"coordinator at {coordinator.url} serving "
        f"{len(registry)} tenants from {tenant_file.name}"
    )

    # Phase 1: both tenants submit concurrently into their fair-share
    # lanes (alice's weight-2 lane is offered two chunks per turn).
    alice_work = [encode_chunk(simulate_episode, (i,)) for i in range(8)]
    bob_work = [encode_chunk(simulate_episode, (i,)) for i in range(100, 104)]
    results: dict[str, list] = {}
    runs = [
        threading.Thread(
            target=lambda name, work: results.update(
                {name: coordinator.run_chunks(work, tenant=name)}
            ),
            args=(name, work),
            daemon=True,
        )
        for name, work in (("alice", alice_work), ("bob", bob_work))
    ]
    for thread in runs:
        thread.start()
    deadline = time.monotonic() + 10
    while (
        coordinator.queue.status()["pending"] < len(alice_work) + len(bob_work)
        and time.monotonic() < deadline
    ):
        time.sleep(0.01)
    queued = scrape_metrics(coordinator.url, "alice-key")
    for line in queued.splitlines():
        if line.startswith(("repro_work_lane_pending", "repro_jobs_")):
            print(f"metrics(queued): {line}")

    # Phase 2: one fleet worker (alice's key) drains both lanes — workers
    # are shared capacity; lanes decide whose *job* is scheduled next.
    stop = threading.Event()
    worker = threading.Thread(
        target=run_worker,
        args=(coordinator.url,),
        kwargs=dict(
            token="alice-key", workers=1, poll_interval=0.02,
            heartbeat_interval=0.5, stop=stop, worker_id="fleet-worker",
        ),
        daemon=True,
    )
    worker.start()
    for thread in runs:
        thread.join(timeout=60)
    assert results["alice"] == [i * i for i in range(8)]
    assert results["bob"] == [i * i for i in range(100, 104)]
    print("both tenants' batches folded in order: True")

    # Phase 3: bob's tight rate limit bites; the client records throttles
    # (never errors) and honors Retry-After with a bounded pause.
    probe = DispatchClient(coordinator.url, token="bob-key")
    for _ in range(50):
        if probe.throttles:
            break
        probe.status()
    assert probe.throttles >= 1, "bob's rate limit never engaged"
    assert probe.errors == 0, "a 429 must never count as an error"
    print(
        f"bob throttled: {probe.throttles} x 429, "
        f"pause_hint {probe.pause_hint():.1f}s, errors {probe.errors}"
    )

    body = scrape_metrics(coordinator.url, "alice-key")
    stop.set()
    worker.join(timeout=10)
    coordinator.stop()
    for line in body.splitlines():
        if line.startswith("repro_tenant_"):
            print(f"metrics: {line}")
    assert tenant_counter(body, "repro_tenant_requests_total", "alice") > 0
    assert tenant_counter(body, "repro_tenant_requests_total", "bob") > 0
    assert tenant_counter(body, "repro_tenant_throttled_total", "bob") > 0
    assert "repro_service_jobs_submitted" in body
    print("per-tenant /metrics counters nonzero for both tenants: True")

    # Phase 4: restart-resume.  A first life accepted three chunks and
    # persisted one outcome before being killed; the second life re-folds
    # the stored outcome from disk and executes only the other two.
    jobs = root / "jobs-restart"
    payloads = [encode_chunk(simulate_episode, (i,)) for i in (7, 8, 9)]
    first_life = JobStore(jobs)
    for payload in payloads:
        first_life.record(JobStore.digest_of(payload), payload)
    first_life.complete(
        JobStore.digest_of(payloads[0]), run_chunk_payload(payloads[0])
    )
    print(f"job store after the kill: {JobStore(jobs).counts()}")
    resumed = EvalCoordinator(
        root / "store-restart",
        job_store=jobs,
        fallback_workers=1,
        fallback_grace=0.0,
    ).start()
    try:
        recovered = resumed.run_chunks(payloads)
    finally:
        resumed.stop()
    assert recovered == [49, 64, 81]
    executed = resumed.queue.status()["total"]
    assert executed == len(payloads) - 1, "the done chunk must not re-run"
    assert len(JobStore(jobs)) == 0, "a clean resume retires its records"
    print(
        f"restart resumed: 1 chunk restored from disk, "
        f"{executed} re-executed, results intact: True"
    )


if __name__ == "__main__":
    main()
