"""Figure 4 — Deutsch-Jozsa under noise, with and without QEC.

Asserts the paper's qualitative claims: the corrected run has a higher
probability of the expected |000> result and a lower probability of error
states, via a QEC suppression factor below 1.
"""

from repro.experiments import figure4


def test_bench_figure4(once):
    experiment = once(figure4.run, num_qubits=3, shots=4096, seed=9)
    print()
    print(experiment.render())
    p_noisy = experiment.measured("P(|000>) on noisy Brisbane (b)")
    p_corrected = experiment.measured("P(|000>) after QEC corrections (c)")
    assert p_corrected > p_noisy, "QEC must raise the expected-result probability"
    assert p_noisy > 60.0, "the DJ circuit should still mostly work under noise"
    assert experiment.measured("average qubit lifetime gain") > 1.5, (
        "the paper claims extended average qubit lifetime"
    )
    reduction = experiment.measured("error probability reduction")
    assert reduction > 20.0, f"error mass should shrink noticeably, got {reduction}"
