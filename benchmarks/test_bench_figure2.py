"""Figure 2 — surface-code syndrome evolution and decoding.

Regenerates the decoder trace and asserts the decoder's two contract
properties: the final syndrome is always cleared, and the logical state
survives at a rate far above the unprotected baseline.
"""

from repro.experiments import figure2


def test_bench_figure2_trace(once):
    experiment = once(
        figure2.run,
        distance=3,
        rounds=4,
        p_data=0.04,
        p_meas=0.04,
        shots_for_stats=150,
    )
    print()
    print(experiment.render())
    assert experiment.measured("decoder clears the final syndrome") == 100.0
    preserved = experiment.measured("logical |1> preserved after correction")
    # Unprotected: a single qubit at p=0.04 per round for 4 rounds survives
    # with probability ~(1-0.04)^4 ~ 0.85 against X... the code with d=3 must
    # hold well above chance and above 70% at this noise.
    assert preserved > 70.0


def test_bench_figure2_distance5(once):
    experiment = once(
        figure2.run,
        distance=5,
        rounds=3,
        p_data=0.02,
        p_meas=0.02,
        shots_for_stats=60,
    )
    assert experiment.measured("decoder clears the final syndrome") == 100.0
    assert experiment.measured("logical |1> preserved after correction") > 85.0
