"""Cold vs warm transpilation through the content-addressed stage.

The cold path runs the full pass stack (decompose, layout, route, peephole);
the warm path restores the transpiled circuit from the cache tiers.  The gap
between the two is exactly what the stage buys every repeated eval, report,
or experiment run — the same numbers `repro transpile --explain` itemises
per pass.
"""

import pytest

from repro.quantum.execution import ExecutionService, get_backend
from repro.quantum.library import qft, random_circuit


@pytest.fixture
def service(tmp_path):
    svc = ExecutionService(max_workers=1, cache_dir=tmp_path)
    yield svc
    svc.shutdown()


def test_bench_transpile_cold(benchmark, service):
    """Pass-manager runs, never a cache hit: each round lowers a distinct
    circuit (fresh generator seed), so the stage cannot memoise."""
    backend = get_backend("fake_falcon")
    circuits = iter(
        random_circuit(4, depth=8, seed=i) for i in range(1_000_000)
    )

    def cold():
        return service.transpile(next(circuits), backend=backend)

    lowered = benchmark(cold)
    assert lowered.num_qubits == backend.coupling_map.num_qubits
    assert service.stats()["transpile_cache_hits"] == 0


def test_bench_transpile_warm(benchmark, service):
    """Every timed round is a cache hit on the same lowered circuit."""
    backend = get_backend("fake_falcon")
    circuit = qft(4)
    reference = service.transpile(circuit, backend=backend)

    def warm():
        return service.transpile(circuit, backend=backend)

    lowered = benchmark(warm)
    assert lowered.instructions == reference.instructions
    assert service.stats()["transpiles"] == 1  # only the priming run
