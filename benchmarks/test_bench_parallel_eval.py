"""Parallel evaluation engine — serial vs parallel wall-clock and parity.

The engine's contract: ``evaluate_many(arms, tasks, workers=N)`` is
bit-identical to the serial runner for any N, per-arm ``execution_stats``
partition the service totals exactly, and on a multi-core host the fan-out
yields a real wall-clock win (the episode work is GIL-holding Python +
numpy, so the speedup comes from forked worker processes).

The >= 2x speedup assertion is gated on available CPUs: on a single-core
container the parallel run cannot beat serial (the bench still asserts
parity and reports the measured ratio).
"""

import os
import time

from repro.evalsuite.runner import PipelineSettings, evaluate_many
from repro.evalsuite.suite import build_suite
from repro.llm.faults import ModelConfig
from repro.quantum.execution import ExecutionService, set_default_service

SAMPLES = 2
SEED = 4242
WORKERS = 4
#: Cores needed before the 2x wall-clock assertion is meaningful.
SPEEDUP_MIN_CPUS = 4


def _arms():
    return [
        PipelineSettings(
            ModelConfig("3b", False), samples_per_task=SAMPLES,
            base_seed=SEED, label="bench-base",
        ),
        PipelineSettings(
            ModelConfig("3b", True), samples_per_task=SAMPLES,
            base_seed=SEED, label="bench-ft",
        ),
        PipelineSettings(
            ModelConfig("3b", True, prompt_style="cot"),
            samples_per_task=SAMPLES, base_seed=SEED, label="bench-cot",
        ),
        PipelineSettings(
            ModelConfig("3b", True, prompt_style="scot"),
            samples_per_task=SAMPLES, base_seed=SEED, label="bench-scot",
        ),
    ]


def _outcomes(results):
    return [
        (
            r.label,
            [
                (o.case_id, o.syntactic_successes, o.full_successes,
                 tuple(o.passes_used))
                for o in r.outcomes
            ],
        )
        for r in results
    ]


def test_bench_parallel_eval_multi_arm(once):
    tasks = build_suite()[:24]
    arms = _arms()

    # Serial reference on a cold service.
    set_default_service(ExecutionService())
    start = time.perf_counter()
    serial = evaluate_many(arms, tasks, workers=1)
    serial_time = time.perf_counter() - start

    # Parallel engine on an equally cold service, under the benchmark timer.
    set_default_service(ExecutionService())
    parallel = once(evaluate_many, arms, tasks, workers=WORKERS)
    set_default_service(None, shutdown_previous=True)

    # Bit-identical outcomes, arm for arm.
    assert _outcomes(serial) == _outcomes(parallel)

    # Exact attribution: every arm's misses are resolved by its own work.
    for result in parallel:
        stats = result.execution_stats
        assert stats["cache_misses"] == (
            stats["simulations"] + stats["simulations_deduped"]
        ), result.label
        assert stats["cache_hits"] + stats["cache_misses"] > 0, result.label

    print()
    print(f"serial (workers=1): {serial_time:.2f}s for {len(arms)} arms")


def test_bench_parallel_eval_speedup():
    """Measured wall-clock: workers=WORKERS vs workers=1 on a warm cache."""
    tasks = build_suite()[:24]
    arms = _arms()

    set_default_service(ExecutionService())
    evaluate_many(arms, tasks, workers=1)  # warm the shared cache

    start = time.perf_counter()
    warm_serial = evaluate_many(arms, tasks, workers=1)
    serial_time = time.perf_counter() - start

    start = time.perf_counter()
    warm_parallel = evaluate_many(arms, tasks, workers=WORKERS)
    parallel_time = time.perf_counter() - start
    set_default_service(None, shutdown_previous=True)

    assert _outcomes(warm_serial) == _outcomes(warm_parallel)
    speedup = serial_time / max(1e-9, parallel_time)
    cpus = os.cpu_count() or 1
    print()
    print(
        f"warm multi-arm eval: serial {serial_time:.2f}s, "
        f"workers={WORKERS} {parallel_time:.2f}s -> {speedup:.2f}x "
        f"({cpus} CPUs)"
    )
    if cpus >= SPEEDUP_MIN_CPUS:
        assert speedup >= 2.0, (
            f"expected >= 2x wall-clock win with workers={WORKERS} on "
            f"{cpus} CPUs, measured {speedup:.2f}x"
        )
