"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables/figures (or a substrate
microbenchmark).  Experiment drivers are deterministic, so each is run once
per benchmark round; shape assertions live next to the timing so a regression
in *results* fails as loudly as a regression in speed.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
