"""Table I — Qiskit HumanEval scores across model variants.

Regenerates the table and asserts the paper's ordering:
7B < 7B-QK < 7B-QKRAG < 7B-QKCoT < Granite-20B-QK, and the Section V-C
property that CoT's gain over RAG is semantic (similar syntactic accuracy,
higher full accuracy).
"""

from repro.experiments import table1

SAMPLES = 4
SEED = 77


def test_bench_table1(once):
    experiment, results = once(table1.run, samples_per_task=SAMPLES, base_seed=SEED)
    print()
    print(experiment.render())
    acc = {r.label: r.accuracy() for r in results}
    syn = {r.label: r.syntactic_accuracy() for r in results}

    assert acc["Starcoder2-7B"] < acc["Starcoder2-7B-QK"]
    assert acc["Starcoder2-7B-QK"] < acc["Starcoder2-7B-QKCoT"]
    assert acc["Starcoder2-7B-QKRAG"] < acc["Starcoder2-7B-QKCoT"] + 0.02
    assert acc["Starcoder2-7B-QKCoT"] < acc["Granite-20B-CODE-QK"] + 0.05, (
        "the 20B model should be at or above CoT (paper: ~5 point gap)"
    )
    # Section V-C: CoT and RAG have comparable syntactic accuracy while CoT
    # has much better semantics.
    assert abs(syn["Starcoder2-7B-QKCoT"] - syn["Starcoder2-7B-QKRAG"]) < 0.15
    cot_semantic_edge = acc["Starcoder2-7B-QKCoT"] - acc["Starcoder2-7B-QKRAG"]
    assert cot_semantic_edge > 0.0, "CoT's edge over RAG is semantic"

    for label, paper in table1.PAPER_VALUES.items():
        measured = 100 * acc[label]
        assert abs(measured - paper) < 10.0, (
            f"{label}: measured {measured:.1f} vs paper {paper} "
            "outside the calibration band"
        )
