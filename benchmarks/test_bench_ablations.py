"""Ablation benchmarks over the design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_bench_fim_rate(once):
    experiment = once(ablations.fim_rate_ablation, rates=(0.0, 0.1, 0.5))
    print()
    print(experiment.render())
    # FIM exposure must teach the FIM format: combined score improves from 0.
    zero = experiment.measured("fim_rate=0.0")
    small = experiment.measured("fim_rate=0.1")
    assert small < zero, "a nonzero FIM rate must beat zero exposure"


def test_bench_chunking(once):
    experiment = once(ablations.chunking_ablation)
    print()
    print(experiment.render())
    naive_integrity = next(
        r.measured_value for r in experiment.rows if r.name.startswith("naive note")
    )
    aware_integrity = next(
        r.measured_value
        for r in experiment.rows
        if r.name.startswith("code_aware note")
    )
    assert aware_integrity >= naive_integrity, (
        "code-aware chunking must not sever more migration notes than naive"
    )


def test_bench_decoders(once):
    experiment = once(ablations.decoder_ablation, shots=100)
    print()
    print(experiment.render())
    mwpm = experiment.measured("surface-3 MWPM")
    unionfind = experiment.measured("surface-3 union-find")
    # Union-find trades accuracy for speed; it must stay in the same regime.
    assert mwpm <= unionfind + 3.0
    assert unionfind < 25.0, "union-find must still decode far below chance"


def test_bench_distance(once):
    experiment = once(
        ablations.distance_ablation,
        physical_rates=(0.005, 0.05),
        distances=(3, 5),
        shots=100,
    )
    print()
    print(experiment.render())
    # Below threshold, both distances suppress errors strongly.
    assert experiment.measured("d=3, p=0.005") < 5.0
    assert experiment.measured("d=5, p=0.005") < 5.0
    # Logical error rates grow with physical rate.
    assert experiment.measured("d=3, p=0.05") > experiment.measured("d=3, p=0.005")


def test_bench_topology(once):
    experiment = once(ablations.topology_ablation)
    print()
    print(experiment.render())
    assert experiment.measured("grid-5x5") == 100.0
    assert experiment.measured("brisbane") == 0.0, (
        "heavy-hex must be rejected (paper Section V-E topology limitation)"
    )
    assert experiment.measured("ring-12") == 0.0
