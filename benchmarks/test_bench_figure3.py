"""Figure 3 — suite accuracy per technique.

Regenerates the paper's bar chart and asserts the ordering the paper reports:
base < fine-tuned < RAG (small gain) << CoT < SCoT, with multi-pass between
RAG and CoT.
"""

from repro.experiments import figure3

SAMPLES = 4
SEED = 1234


def test_bench_figure3(once):
    experiment, results = once(figure3.run, samples_per_task=SAMPLES, base_seed=SEED)
    print()
    print(experiment.render())
    acc = {r.label: r.accuracy() for r in results}

    # Orderings the paper reports (Figure 3 + abstract).
    assert acc["Base-3B"] < acc["FT"], "fine-tuning must improve over base"
    assert acc["FT"] < acc["FT+CoT"], "CoT must improve over fine-tuned"
    assert acc["FT+CoT"] < acc["FT+SCoT"], "SCoT must beat CoT"
    assert acc["FT"] <= acc["FT+MP3"] + 0.02, "multi-pass must not hurt"
    # RAG's gain is small (paper: ~4 points), far below CoT's (~32 points).
    rag_gain = acc["FT+RAG"] - acc["FT"]
    cot_gain = acc["FT+CoT"] - acc["FT"]
    assert cot_gain > rag_gain + 0.10, (
        f"CoT gain {cot_gain:.2f} must dwarf RAG gain {rag_gain:.2f}"
    )
    # Absolute bands (paper value +/- 8 points; seeds differ, shape holds).
    for label, paper in figure3.PAPER_VALUES.items():
        measured = 100 * acc[label]
        assert abs(measured - paper) < 8.0, (
            f"{label}: measured {measured:.1f} vs paper {paper} "
            "outside the calibration band"
        )
