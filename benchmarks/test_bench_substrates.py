"""Substrate micro-benchmarks: simulator, tableau, transpiler, decoder, RAG.

These are conventional pytest-benchmark timings (multiple rounds) over the
performance-critical inner loops that every experiment above sits on.
"""

import numpy as np

from repro.llm.model import make_model
from repro.qec.codes.surface import SurfaceCode
from repro.qec.matching import MWPMDecoder
from repro.qec.syndrome import sample_memory
from repro.quantum.backend import FakeBrisbane, LocalSimulator
from repro.quantum.library import ghz_state, qft, random_circuit
from repro.quantum.statevector import Statevector
from repro.quantum.transpiler import transpile
from repro.rag.retriever import Retriever
from repro.stabilizer.tableau import StabilizerTableau


def test_bench_statevector_evolution(benchmark):
    qc = qft(10)
    result = benchmark(Statevector.from_circuit, qc)
    assert result.num_qubits == 10


def test_bench_noisy_sampling(benchmark):
    backend = FakeBrisbane()
    tqc = transpile(ghz_state(4, measure=True), backend=backend)

    def run():
        return backend.run(tqc, shots=200, seed=3).result().get_counts()

    counts = benchmark(run)
    assert sum(counts.values()) == 200


def test_bench_ideal_sampling(benchmark):
    backend = LocalSimulator()
    qc = ghz_state(10, measure=True)

    def run():
        return backend.run(qc, shots=2048, seed=5).result().get_counts()

    counts = benchmark(run)
    assert set(counts) == {"0" * 10, "1" * 10}


def test_bench_transpile_brisbane(benchmark):
    backend = FakeBrisbane()
    qc = random_circuit(6, depth=12, seed=2, measure=True)
    tqc = benchmark(transpile, qc, backend=backend)
    assert tqc.num_qubits == 127


def test_bench_tableau_surface_round(benchmark):
    """One thousand tableau gates on a 49-qubit register."""

    def run():
        t = StabilizerTableau(49, rng=np.random.default_rng(1))
        for i in range(48):
            t.h(i)
            t.cx(i, i + 1)
        for i in range(0, 48, 2):
            t.measure(i)
        return t

    benchmark(run)


def test_bench_mwpm_decode(benchmark):
    code = SurfaceCode(5)
    decoder = MWPMDecoder(code, "x")
    rng = np.random.default_rng(7)
    history = sample_memory(code, rounds=5, p_data=0.03, p_meas=0.03, rng=rng)

    result = benchmark(decoder.decode, history)
    residual = history.true_error ^ result.correction
    assert not code.syndrome(residual, "x").any()


def test_bench_generation(benchmark):
    model = make_model(fine_tuned=True)
    prompt = "Create a Bell state and measure both qubits on a simulator"

    def run():
        return model.generate(prompt, np.random.default_rng(11), params={})

    completion = benchmark(run)
    assert completion.family == "bell"


def test_bench_retrieval(benchmark):
    retriever = Retriever()
    hits = benchmark(retriever.retrieve, "how to run a circuit and get counts")
    assert hits
