"""Variational sweep — parameterized batch path vs legacy concrete path.

The symbolic-parameter contract, measured end-to-end: a 64-point sweep of one
ansatz knob costs ONE transpile (the bound fast path lowers the template once
and rebinds) and ONE batch-planner group (every point shares the template's
structure fingerprint), where the legacy path builds 64 concrete circuits,
transpiles each one and simulates them serially.

Parity is asserted always — the bound sweep must be bit-identical to the
concretely-built sweep per point.  The wall-clock assertion is gated on
available CPUs like ``test_bench_batch_sim``: on a starved container the
ratio is noise.
"""

import os
import time

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService
from repro.quantum.parameters import Parameter

SWEEP = 64
QUBITS = 5
LAYERS = 6
SHOTS = 384
SEED = 9393
BASIS = ("ry", "rz", "cx", "measure")
#: Cores needed before the wall-clock assertion is meaningful.
SPEEDUP_MIN_CPUS = 4


def _body_angles() -> list[list[float]]:
    rng = np.random.default_rng(SEED)
    return [
        [float(rng.uniform(0, 2 * np.pi)) for _ in range(2 * QUBITS)]
        for _ in range(LAYERS)
    ]


def _build(knob) -> QuantumCircuit:
    """The sweep ansatz; ``knob`` is a float (legacy) or Parameter (template)."""
    qc = QuantumCircuit(QUBITS, QUBITS)
    for angles in _body_angles():
        for q in range(QUBITS):
            qc.ry(angles[2 * q], q)
            qc.rz(angles[2 * q + 1], q)
        for q in range(QUBITS - 1):
            qc.cx(q, q + 1)
    qc.ry(knob, 0)
    qc.measure_all()
    return qc


def _points() -> list[float]:
    return [2 * np.pi * point / SWEEP for point in range(SWEEP)]


def _counts(result, n):
    return [result.get_counts(i) for i in range(n)]


def test_bench_variational_sweep_cold(once):
    # Legacy path: one concrete circuit per point, each transpiled from
    # scratch, simulated serially.
    legacy_svc = ExecutionService(executor="thread")
    start = time.perf_counter()
    legacy_lowered = [
        legacy_svc.transpile(_build(v), basis_gates=BASIS) for v in _points()
    ]
    legacy = legacy_svc.run(legacy_lowered, shots=SHOTS, seed=SEED).result()
    legacy_time = time.perf_counter() - start
    legacy_stats = legacy_svc.stats()
    legacy_svc.shutdown()

    # Parameterized path: bind one template per point; the bound fast path
    # lowers the template once, the batch planner groups the whole sweep.
    template = _build(Parameter("theta"))
    param_svc = ExecutionService(executor="batch")

    def sweep():
        lowered = [
            param_svc.transpile(template.bind({"theta": v}), basis_gates=BASIS)
            for v in _points()
        ]
        return param_svc.run(lowered, shots=SHOTS, seed=SEED).result()

    start = time.perf_counter()
    param = once(sweep)
    param_time = time.perf_counter() - start

    # Parity always: late binding is bit-identical to concrete building.
    assert _counts(param, SWEEP) == _counts(legacy, SWEEP)

    param_stats = param_svc.stats()
    param_svc.shutdown()
    assert legacy_stats["transpiles"] == SWEEP
    assert param_stats["transpiles"] == 1
    assert param_stats["transpile_cache_hits"] == SWEEP - 1
    assert param_stats["batch_groups"] == 1
    assert param_stats["simulations_batched"] == SWEEP

    speedup = legacy_time / max(1e-9, param_time)
    cpus = os.cpu_count() or 1
    print()
    print(
        f"cold {SWEEP}-point sweep: legacy {legacy_time:.3f}s "
        f"({legacy_stats['transpiles']} transpiles), parameterized "
        f"{param_time:.3f}s ({param_stats['transpiles']} transpile) "
        f"-> {speedup:.2f}x ({cpus} CPUs)"
    )
    if cpus >= SPEEDUP_MIN_CPUS:
        assert speedup >= 2.0, (
            f"parameterized sweep only {speedup:.2f}x faster on {cpus} CPUs"
        )
