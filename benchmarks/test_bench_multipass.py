"""Section V-D — multi-pass inference sweep.

Asserts the saturation property: passes help early then flatten (the paper's
"additional inference passes ... yielded limited benefit").
"""

from repro.experiments import multipass

SAMPLES = 4
SEED = 4321


def test_bench_multipass(once):
    experiment, results = once(
        multipass.run, max_passes=5, samples_per_task=SAMPLES, base_seed=SEED
    )
    print()
    print(experiment.render())
    curve = [r.accuracy() for r in results]

    # Monotone non-decreasing up to small repair-regression noise.
    for i in range(1, len(curve)):
        assert curve[i] >= curve[i - 1] - 0.03, (
            f"pass {i+1} regressed: {curve}"
        )
    # More passes help overall...
    assert curve[2] > curve[0], "3 passes must beat single-pass"
    # ...but saturate: the late gains are smaller than the early gains.
    early_gain = curve[2] - curve[0]
    late_gain = curve[4] - curve[2]
    assert late_gain <= early_gain + 0.01, (
        f"no saturation: early {early_gain:.3f}, late {late_gain:.3f}"
    )
