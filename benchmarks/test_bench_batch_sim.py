"""Batch executor — vectorised sweep vs serial wall-clock and parity.

The batch engine's contract: ``executor="batch"`` is bit-identical to the
serial engine for every ``(seed, circuit)`` while executing a homogeneous
parameter sweep (one gate structure, many angles) as a handful of stacked
matmuls instead of per-circuit evolutions.

The >= 3x speedup assertion is gated on available CPUs, mirroring
``test_bench_parallel_eval``: on a starved single-core container BLAS and
the Python loop fight for the same core and the measured ratio is noise
(the bench still asserts parity and reports the ratio).
"""

import os
import time

import numpy as np

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.execution import ExecutionService

SWEEP = 64
QUBITS = 5
LAYERS = 6
SHOTS = 384
SEED = 8282
#: Cores needed before the 3x wall-clock assertion is meaningful.
SPEEDUP_MIN_CPUS = 4


def _sweep_circuits() -> list[QuantumCircuit]:
    """One ansatz, SWEEP points of its scan knob.

    The body angles are shared across the sweep (it is the *same* ansatz at
    every point), so the engine applies each body gate to all rows with one
    stacked matmul; only the swept ``ry`` diverges into per-point rows.
    """
    rng = np.random.default_rng(SEED)
    body = [
        [float(rng.uniform(0, 2 * np.pi)) for _ in range(2 * QUBITS)]
        for _ in range(LAYERS)
    ]
    circuits = []
    for point in range(SWEEP):
        qc = QuantumCircuit(QUBITS, QUBITS)
        for angles in body:
            for q in range(QUBITS):
                qc.ry(angles[2 * q], q)
                qc.rz(angles[2 * q + 1], q)
            for q in range(QUBITS - 1):
                qc.cx(q, q + 1)
        qc.ry(2 * np.pi * point / SWEEP, 0)  # the scan knob
        qc.measure_all()
        circuits.append(qc)
    return circuits


def _counts(result, n):
    return [result.get_counts(i) for i in range(n)]


def test_bench_batch_sweep_cold_cache(once):
    circuits = _sweep_circuits()

    serial_svc = ExecutionService(executor="thread")
    start = time.perf_counter()
    serial = serial_svc.run(circuits, shots=SHOTS, seed=SEED).result()
    serial_time = time.perf_counter() - start
    serial_svc.shutdown()

    batch_svc = ExecutionService(executor="batch")
    start = time.perf_counter()
    batch = once(
        lambda: batch_svc.run(circuits, shots=SHOTS, seed=SEED).result()
    )
    batch_time = time.perf_counter() - start

    # Parity always: the batch sweep is bit-identical to serial, per unit.
    assert _counts(batch, SWEEP) == _counts(serial, SWEEP)

    # The whole cold sweep took the vectorised path, in one structure group.
    stats = batch_svc.stats()
    batch_svc.shutdown()
    assert stats["simulations_batched"] == SWEEP
    assert stats["batch_groups"] == 1
    assert stats["cache_misses"] == (
        stats["simulations"] + stats["simulations_deduped"]
    )

    speedup = serial_time / max(1e-9, batch_time)
    cpus = os.cpu_count() or 1
    print()
    print(
        f"cold {SWEEP}-point sweep: serial {serial_time:.3f}s, "
        f"batch {batch_time:.3f}s -> {speedup:.2f}x ({cpus} CPUs)"
    )
    if cpus >= SPEEDUP_MIN_CPUS:
        assert speedup >= 3.0, (
            f"batch executor only {speedup:.2f}x faster on {cpus} CPUs"
        )
