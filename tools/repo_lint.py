#!/usr/bin/env python3
"""Repo-invariant AST lint: structural rules ruff/grep cannot express.

Each rule guards an invariant this codebase has been burned by before.  The
checks walk Python ASTs (never raw text), so backend names inside string
literals — the synthetic LLM corpus, RAG docs, prompt templates — are
invisible and never false-positive.

Rules
-----
R001  Direct ``FakeBrisbane()`` / ``LocalSimulator()`` / ``FakeFalcon()``
      construction outside the backend registry.  (``NoisySimulator`` is
      exempt: it is parameterized by a noise model, so derived instances —
      e.g. the QEC agent's noise-scaled backend — are legitimate.)
      Call sites must go through ``repro.quantum.execution.get_backend`` so
      every consumer shares one memoised instance per name and the execution
      result cache stays maximally effective.  Allowed only in
      ``quantum/backend.py`` (the definitions) and
      ``quantum/execution/registry.py`` (the factories).

R002  Two or more ``.stats()`` calls inside one function: the
      before/after-diff pattern.  Global-counter diffs race under
      concurrency; use ``stats_scope()`` from
      ``repro.quantum.execution`` for attribution instead.

R003  Column-folded batch kernel: ``matrix @ x.reshape(a, b)`` (or
      ``np.matmul`` with a direct 2-argument ``.reshape`` second operand)
      under ``batchsim/``.  Folding the batch into the GEMM's column
      dimension changes the BLAS kernel and breaks bit-identity with the
      serial simulator (see ``batchsim/state.py``); the sanctioned kernel
      stacks to 3-D and lets matmul broadcast.

R004  Dead transpiler pass: a public function in a pass-library module
      (``transpiler/passes.py``) referenced nowhere outside its own module.
      A pass nothing imports is silently skipped by every pass stack
      (``drop_barriers`` sat unused this way); wire it into the PassManager,
      export it, or delete it.  Cross-file by nature, so it runs from
      ``lint_paths`` over the whole linted tree, not per file — and only
      when the tree contains files beyond the pass modules themselves.

R005  Direct ``float()`` coercion of a gate parameter outside the binding
      module: ``float(inst.params[i])``, or ``float(p)`` where ``p`` loops
      over a ``.params`` sequence.  Since symbolic parameters landed, a gate
      param may be a ``Parameter``/``ParameterExpression`` whose ``__float__``
      raises [QA105] at runtime — ad-hoc coercion turns an unbound template
      into a crash deep inside a kernel instead of a pre-flight diagnostic.
      Route through ``repro.quantum.parameters`` (``as_concrete`` /
      ``bind_parameter`` / ``circuit.bind``) so symbolic values are either
      bound or rejected with the coded error.  Allowed only in
      ``quantum/parameters.py`` (the sanctioned coercions live there).

Usage::

    python tools/repo_lint.py [paths...]   # default: src/

Exit status 1 if any violation is found, 0 otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Backend classes that must be built by the registry, not call sites.
REGISTRY_ONLY = {"FakeBrisbane", "LocalSimulator", "FakeFalcon"}

#: Files (by trailing path parts) where direct construction is the point.
R001_ALLOWED = (
    ("quantum", "execution", "registry.py"),
    ("quantum", "backend.py"),
)

#: R003 only applies under these directory names.
R003_DIRS = {"batchsim"}

#: Pass-library modules (by trailing path parts) whose public functions R004
#: requires to be referenced somewhere outside their own module.
R004_PASS_MODULES = (("transpiler", "passes.py"),)

#: The one module allowed to coerce gate params with float() (R005).
R005_ALLOWED = (("quantum", "parameters.py"),)


class Violation:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path: Path, line: int, rule: str, message: str) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _terminal_name(node: ast.expr) -> str | None:
    """The trailing identifier of a Name/Attribute chain (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_allowed_r001(path: Path) -> bool:
    parts = path.parts
    return any(parts[-len(suffix):] == suffix for suffix in R001_ALLOWED)


def _check_direct_backend_calls(path: Path, tree: ast.AST) -> list[Violation]:
    """R001: backend classes constructed outside the registry."""
    if _is_allowed_r001(path):
        return []
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in REGISTRY_ONLY:
                found.append(
                    Violation(
                        path, node.lineno, "R001",
                        f"direct {name}() construction; use "
                        "repro.quantum.execution.get_backend(...) so the "
                        "instance is shared and cache-friendly",
                    )
                )
    return found


def _check_stats_diffs(path: Path, tree: ast.AST) -> list[Violation]:
    """R002: >=2 ``.stats()`` calls in one function (before/after diffing)."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        calls = [
            sub
            for sub in ast.walk(node)
            if isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "stats"
        ]
        if len(calls) >= 2:
            lines = ", ".join(str(c.lineno) for c in calls)
            found.append(
                Violation(
                    path, calls[1].lineno, "R002",
                    f"{len(calls)} .stats() calls in {node.name}() "
                    f"(lines {lines}): global-counter diffs race under "
                    "concurrency; use stats_scope() for attribution",
                )
            )
    return found


def _is_two_arg_reshape(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "reshape"
        and len(node.args) == 2
        and not node.keywords
    )


def _check_column_folded_matmul(path: Path, tree: ast.AST) -> list[Violation]:
    """R003: ``matrix @ x.reshape(a, b)`` in batchsim kernels."""
    if not R003_DIRS.intersection(path.parts):
        return []
    found = []
    message = (
        "column-folded batch matmul (operand is a 2-arg .reshape): this "
        "widens the GEMM, changes the BLAS kernel, and breaks bit-identity "
        "with the serial simulator; stack to (batch, 2**k, rest) instead"
    )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, ast.MatMult)
            and _is_two_arg_reshape(node.right)
        ):
            found.append(Violation(path, node.lineno, "R003", message))
        elif (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) == "matmul"
            and len(node.args) >= 2
            and _is_two_arg_reshape(node.args[1])
        ):
            found.append(Violation(path, node.lineno, "R003", message))
    return found


def _is_pass_module(path: Path) -> bool:
    parts = path.parts
    return any(
        parts[-len(suffix):] == suffix for suffix in R004_PASS_MODULES
    )


def _referenced_names(tree: ast.AST) -> set[str]:
    """Every identifier a module mentions: names, attributes, imports."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.name for alias in node.names)
    return names


def _check_dead_pass_functions(
    parsed: dict[Path, ast.AST]
) -> list[Violation]:
    """R004: public pass functions referenced nowhere outside their module.

    Cross-file: needs the whole linted tree.  Skipped when only pass modules
    were linted (there is no "outside" to reference them from).
    """
    pass_files = {f: t for f, t in parsed.items() if _is_pass_module(f)}
    if not pass_files or len(pass_files) == len(parsed):
        return []
    external: set[str] = set()
    for file, tree in parsed.items():
        if file not in pass_files:
            external |= _referenced_names(tree)
    found = []
    for file, tree in sorted(pass_files.items()):
        for node in tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not node.name.startswith("_")
                and node.name not in external
            ):
                found.append(
                    Violation(
                        file, node.lineno, "R004",
                        f"dead transpiler pass: {node.name}() is public but "
                        "referenced nowhere outside this module, so no pass "
                        "stack can be running it; wire it into the "
                        "PassManager, export it, or delete it",
                    )
                )
    return found


def _is_params_attribute(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "params"


def _check_param_float_coercion(path: Path, tree: ast.AST) -> list[Violation]:
    """R005: ``float()`` applied to gate params outside the binding module."""
    if any(
        path.parts[-len(suffix):] == suffix for suffix in R005_ALLOWED
    ):
        return []
    # Names bound by ``for p in <expr>.params`` anywhere in the module; loop
    # variables are function-local in practice, so module-level collection
    # only widens the net (no false negatives, and a same-named variable
    # holding params elsewhere is exactly what the rule should catch).
    param_loop_names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.For, ast.comprehension))
            and _is_params_attribute(node.iter)
            and isinstance(node.target, ast.Name)
        ):
            param_loop_names.add(node.target.id)
    found = []
    message = (
        "float() coercion of a gate parameter: symbolic "
        "Parameter/ParameterExpression values raise [QA105] here at "
        "runtime; use repro.quantum.parameters.as_concrete (or bind the "
        "circuit) so unbound templates fail with the coded diagnostic"
    )
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and not node.keywords
        ):
            continue
        arg = node.args[0]
        direct = (
            isinstance(arg, ast.Subscript)
            and _is_params_attribute(arg.value)
        ) or _is_params_attribute(arg)
        via_loop = isinstance(arg, ast.Name) and arg.id in param_loop_names
        if direct or via_loop:
            found.append(Violation(path, node.lineno, "R005", message))
    return found


CHECKS = (
    _check_direct_backend_calls,
    _check_stats_diffs,
    _check_column_folded_matmul,
    _check_param_float_coercion,
)


def lint_source(path: Path, source: str) -> list[Violation]:
    """All violations in one file's source text."""
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "R000", f"syntax error: {exc.msg}")]
    violations = []
    for check in CHECKS:
        violations.extend(check(path, tree))
    violations.sort(key=lambda v: (v.line, v.rule))
    return violations


def lint_paths(paths: list[Path]) -> list[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations = []
    parsed: dict[Path, ast.AST] = {}
    for file in files:
        source = file.read_text()
        violations.extend(lint_source(file, source))
        try:
            parsed[file] = ast.parse(source, filename=str(file))
        except SyntaxError:
            continue  # already reported as R000 by lint_source
    violations.extend(_check_dead_pass_functions(parsed))
    return violations


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    roots = [Path(a) for a in args] or [Path("src")]
    missing = [r for r in roots if not r.exists()]
    if missing:
        print(f"repo_lint: no such path: {', '.join(map(str, missing))}")
        return 2
    violations = lint_paths(roots)
    for violation in violations:
        print(violation.render())
    checked = sum(
        len(list(r.rglob("*.py"))) if r.is_dir() else 1 for r in roots
    )
    status = "FAIL" if violations else "ok"
    print(
        f"repo_lint: {checked} file(s), {len(violations)} violation(s) [{status}]"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
